module Pipeline = Cbsp.Pipeline
module Metrics = Cbsp.Metrics
module Registry = Cbsp_workloads.Registry
module Config = Cbsp_compiler.Config
module Stats = Cbsp_util.Stats
module Scheduler = Cbsp_engine.Scheduler
module Timing = Cbsp_engine.Timing

type workload_result = {
  wr_name : string;
  wr_fli : Pipeline.fli_result;
  wr_vli : Pipeline.vli_result;
  wr_seconds : float;
  wr_timings : Timing.record list;
  wr_compiles : int;
  wr_compile_requests : int;
}

type t = {
  results : workload_result list;
  target : int;
  input : Cbsp_source.Input.t;
  jobs : int;
}

let run_suite ?names ?(target = Pipeline.default_target)
    ?(input = Cbsp_source.Input.ref_input) ?sp_config ?primary ?(jobs = 1)
    ?(progress = fun _ -> ()) () =
  let entries =
    match names with
    | None -> Registry.all
    | Some names -> List.map Registry.find names
  in
  (* One engine per workload: its binary store is what lets the FLI and
     VLI runs share the four compiled binaries (each (program, config)
     compiles exactly once per suite entry), and its timing sink becomes
     wr_timings.  Workloads are independent, so the suite itself is a
     scheduler job list; inside a worker the pipelines degrade to
     sequential, so the domain count stays bounded by [jobs] either
     way. *)
  let results =
    Scheduler.parallel_map ~jobs
      (fun (entry : Registry.entry) ->
        progress entry.Registry.name;
        let t0 = Unix.gettimeofday () in
        let engine = Pipeline.create_engine ~jobs () in
        let program = entry.Registry.build () in
        let configs =
          Config.paper_four ~loop_splitting:entry.Registry.loop_splitting ()
        in
        let fli =
          Pipeline.run_fli ?sp_config ~engine program ~configs ~input ~target
        in
        let vli =
          Pipeline.run_vli ?sp_config ?primary ~engine program ~configs ~input
            ~target
        in
        let compiles, compile_hits = Pipeline.compile_stats engine in
        { wr_name = entry.Registry.name; wr_fli = fli; wr_vli = vli;
          wr_seconds = Unix.gettimeofday () -. t0;
          wr_timings = Pipeline.timings engine; wr_compiles = compiles;
          wr_compile_requests = compiles + compile_hits })
      entries
  in
  { results; target; input; jobs }

let find t name = List.find (fun r -> r.wr_name = name) t.results

let timings t = List.concat_map (fun r -> r.wr_timings) t.results

let timing_report t ppf = Timing.pp_report ppf (timings t)

let mean_of f binaries =
  Stats.mean (Array.of_list (List.map f binaries))

let avg_n_points_fli r =
  mean_of (fun b -> float_of_int b.Pipeline.br_n_points) r.wr_fli.Pipeline.fli_binaries

let avg_n_points_vli r =
  mean_of (fun b -> float_of_int b.Pipeline.br_n_points) r.wr_vli.Pipeline.vli_binaries

let avg_interval_vli r =
  mean_of (fun b -> b.Pipeline.br_avg_interval) r.wr_vli.Pipeline.vli_binaries

let avg_cpi_error_fli r =
  mean_of (fun b -> b.Pipeline.br_cpi_error) r.wr_fli.Pipeline.fli_binaries

let avg_cpi_error_vli r =
  mean_of (fun b -> b.Pipeline.br_cpi_error) r.wr_vli.Pipeline.vli_binaries

let speedup_errors r ~pair:(a, b) ~fli =
  let binaries =
    if fli then r.wr_fli.Pipeline.fli_binaries else r.wr_vli.Pipeline.vli_binaries
  in
  Metrics.pair_error binaries ~a ~b

let paper_pairs_same_platform = [ ("32u", "32o"); ("64u", "64o") ]

let paper_pairs_cross_platform = [ ("32u", "64u"); ("32o", "64o") ]
