(** The paper's evaluation harness: run both pipelines over the benchmark
    suite once and expose the per-workload results that every figure and
    table is derived from (Section 4's methodology).

    The suite is scheduled on the job-graph engine: with [jobs > 1],
    independent workloads run on parallel domains, and each workload's
    FLI and VLI runs share one {!Cbsp.Pipeline.engine} so its four
    binaries compile exactly once (the artifact store serves the second
    pipeline's requests memoized).  Results are bit-identical for every
    [jobs] value. *)

type workload_result = {
  wr_name : string;
  wr_fli : Cbsp.Pipeline.fli_result;
  wr_vli : Cbsp.Pipeline.vli_result;
  wr_seconds : float;  (** Wall-clock time spent on this workload. *)
  wr_timings : Cbsp_engine.Timing.record list;
      (** Every pipeline job this workload ran (compile, struct-profile,
          matching, interval-collection, clustering, summarize), with
          wall-clock and sizes, in canonical (stage, label) order. *)
  wr_compiles : int;
      (** Compiles actually executed — 4 (one per configuration): the
          artifact store deduplicates the FLI and VLI pipelines'
          requests. *)
  wr_compile_requests : int;
      (** Compile requests across both pipelines (8 = 2 × 4 configs). *)
}

type t = {
  results : workload_result list;  (** In suite order. *)
  target : int;
  input : Cbsp_source.Input.t;
  jobs : int;  (** Scheduler width the suite ran with. *)
}

val run_suite :
  ?names:string list ->
  ?target:int ->
  ?input:Cbsp_source.Input.t ->
  ?sp_config:Cbsp_simpoint.Simpoint.config ->
  ?primary:int ->
  ?jobs:int ->
  ?progress:(string -> unit) ->
  unit ->
  t
(** Runs per-binary FLI SimPoint and mappable VLI SimPoint on each named
    workload (default: the whole suite) over the paper's four binaries.
    [jobs] (default 1 — strictly sequential, the determinism-sensitive
    callers' path) bounds the number of worker domains; results are
    bit-identical for any value.  [progress] is called with each
    workload's name before it runs (from a worker domain when
    [jobs > 1]).
    @raise Not_found for unknown workload names. *)

val find : t -> string -> workload_result
(** @raise Not_found. *)

val timings : t -> Cbsp_engine.Timing.record list
(** All workloads' job records concatenated, in suite order. *)

val timing_report : t -> Format.formatter -> unit
(** Render the per-stage timing report (jobs, total/max wall-clock,
    summed input/output sizes per stage) over the whole suite. *)

(** Per-workload derived quantities, averaged over the four binaries
    where the paper does (Figures 1-3). *)

val avg_n_points_fli : workload_result -> float
val avg_n_points_vli : workload_result -> float
val avg_interval_vli : workload_result -> float
val avg_cpi_error_fli : workload_result -> float
val avg_cpi_error_vli : workload_result -> float

val speedup_errors :
  workload_result -> pair:string * string -> fli:bool -> float
(** Speedup-estimation error for a configuration pair like
    [("32u", "32o")], using FLI or VLI results. *)

val paper_pairs_same_platform : (string * string) list
(** Figure 4's pairs: 32u->32o and 64u->64o. *)

val paper_pairs_cross_platform : (string * string) list
(** Figure 5's pairs: 32u->64u and 32o->64o. *)
