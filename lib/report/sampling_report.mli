(** The SimPoint-vs-sampling experiment: run every statistical sampler
    over a suite of workloads (many seeds each), aggregate error,
    CI half-width and {b coverage} — the fraction of runs whose
    confidence interval contains the true CPI, the calibration metric a
    95% interval should hit ~95% of the time — and render the comparison
    table next to SimPoint's (CI-free) error on the same intervals.  Also
    emits the machine-readable [cbsp-sampling/1] JSON consumed by the CI
    smoke job. *)

type workload_sampling = {
  ws_name : string;
  ws_result : Cbsp.Pipeline.sampling_result;
  ws_seconds : float;
  ws_timings : Cbsp_engine.Timing.record list;
}

type t = {
  sr_workloads : workload_sampling list;
  sr_target : int;
  sr_n : int;
  sr_level : float;
  sr_seeds : int list;
}

val run_suite :
  ?names:string list ->
  ?target:int ->
  ?input:Cbsp_source.Input.t ->
  ?sp_config:Cbsp_simpoint.Simpoint.config ->
  ?jobs:int ->
  ?level:float ->
  ?seeds:int list ->
  ?progress:(string -> unit) ->
  n:int ->
  unit ->
  t
(** One {!Cbsp.Pipeline.run_sampling} per workload over the paper's four
    configurations, scheduled like {!Experiment.run_suite} (workloads are
    jobs; each gets its own engine).  [names] defaults to the full
    registry; [seeds] to [[2007]]. *)

val find : t -> string -> workload_sampling
(** @raise Not_found for unknown names. *)

(** {1 Aggregates}

    All aggregates pool every (binary, seed) run of one method within a
    workload — coverage over 4 binaries x 20 seeds is 80 Bernoulli
    trials, enough to see miscalibration. *)

val coverage : workload_sampling -> method_:string -> float
(** Fraction of the method's runs whose CI covers the binary's true CPI. *)

val mean_abs_error : workload_sampling -> method_:string -> float
(** Mean relative CPI error [|est - true| / true] over the runs. *)

val mean_rel_half : workload_sampling -> method_:string -> float
(** Mean CI half-width relative to the true CPI (infinite half-widths are
    excluded; returns [nan] when no run was estimable). *)

val mean_cost_fraction : workload_sampling -> method_:string -> float
(** Mean fraction of the program's instructions inside sampled intervals
    — the detailed-simulation cost relative to full simulation. *)

val simpoint_error : workload_sampling -> float
(** Mean SimPoint relative CPI error over the workload's binaries, from
    the same intervals the samplers drew from. *)

val simpoint_cost_fraction : workload_sampling -> float
(** Mean fraction of instructions inside SimPoint's chosen intervals. *)

val overall_coverage : t -> method_:string -> float
(** [coverage] pooled over all workloads — the number the CI smoke job
    gates on. *)

val render : t -> Format.formatter -> unit
(** Per-workload estimate lines (first seed), the SimPoint-vs-samplers
    comparison table (error, coverage, mean CI width, cost), and the
    cross-binary speedup-with-confidence lines for the paper's pairs. *)

val write_json : t -> path:string -> mode:string -> unit
(** Write the [cbsp-sampling/1] document: per-workload per-binary
    per-method per-seed estimates plus the aggregates above.  [mode] is
    recorded verbatim (["smoke"] or ["full"]). *)
