module Pipeline = Cbsp.Pipeline

let series_of what =
  let speedup pair fli r = Experiment.speedup_errors r ~pair ~fli in
  match what with
  | "fig1" ->
    [ ("fli_points", Experiment.avg_n_points_fli);
      ("vli_points", Experiment.avg_n_points_vli) ]
  | "fig2" -> [ ("vli_avg_interval", Experiment.avg_interval_vli) ]
  | "fig3" ->
    [ ("fli_cpi_error", Experiment.avg_cpi_error_fli);
      ("vli_cpi_error", Experiment.avg_cpi_error_vli) ]
  | "fig4" ->
    List.concat_map
      (fun ((a, b) as pair) ->
        [ (Printf.sprintf "fli_%s%s" a b, speedup pair true);
          (Printf.sprintf "vli_%s%s" a b, speedup pair false) ])
      Experiment.paper_pairs_same_platform
  | "fig5" ->
    List.concat_map
      (fun ((a, b) as pair) ->
        [ (Printf.sprintf "fli_%s%s" a b, speedup pair true);
          (Printf.sprintf "vli_%s%s" a b, speedup pair false) ])
      Experiment.paper_pairs_cross_platform
  | "metrics" ->
    let dram fli (r : Experiment.workload_result) =
      let binaries =
        if fli then r.Experiment.wr_fli.Pipeline.fli_binaries
        else r.Experiment.wr_vli.Pipeline.vli_binaries
      in
      Cbsp_util.Stats.mean
        (Array.of_list
           (List.filter_map
              (fun (b : Pipeline.binary_result) ->
                Array.to_list b.Pipeline.br_metrics
                |> List.find_opt (fun m -> m.Pipeline.m_name = "dram_accesses")
                |> Option.map (fun m ->
                       if m.Pipeline.m_true_pki < 0.5 then 0.0
                       else
                         Float.abs (m.Pipeline.m_est_pki -. m.Pipeline.m_true_pki)
                         /. m.Pipeline.m_true_pki))
              binaries))
    in
    [ ("fli_dram_apki_error", dram true); ("vli_dram_apki_error", dram false) ]
  | other -> invalid_arg (Printf.sprintf "Csv.figure_rows: unknown figure %S" other)

let figure_rows t ~what =
  let series = series_of what in
  let header = "workload" :: List.map fst series in
  let rows =
    List.map
      (fun (r : Experiment.workload_result) ->
        r.Experiment.wr_name
        :: List.map (fun (_, f) -> Printf.sprintf "%.9g" (f r)) series)
      t.Experiment.results
  in
  (header, rows)

let to_string t ~what =
  let header, rows = figure_rows t ~what in
  let buf = Buffer.create 4096 in
  let add_row cells =
    Buffer.add_string buf (String.concat "," cells);
    Buffer.add_char buf '\n'
  in
  add_row header;
  List.iter add_row rows;
  Buffer.contents buf

let save t ~what ~path =
  Cbsp_util.Io.with_out_file path (fun oc ->
      output_string oc (to_string t ~what))

let save_all t ~dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun what -> save t ~what ~path:(Filename.concat dir (what ^ ".csv")))
    [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "metrics" ]
