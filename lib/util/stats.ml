let sum xs =
  (* Kahan summation: experiment aggregates add millions of small interval
     contributions, where naive summation visibly drifts. *)
  let total = ref 0.0 and comp = ref 0.0 in
  Array.iter
    (fun x ->
      let y = x -. !comp in
      let t = !total +. y in
      comp := t -. !total -. y;
      total := t)
    xs;
  !total

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let weighted_mean ~weights xs =
  let n = Array.length xs in
  if Array.length weights <> n then invalid_arg "Stats.weighted_mean: length mismatch";
  let wsum = sum weights in
  if wsum = 0.0 then invalid_arg "Stats.weighted_mean: zero total weight";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. (weights.(i) *. xs.(i))
  done;
  !acc /. wsum

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int n
  end

let stddev xs = sqrt (variance xs)

let sample_variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = ref 0.0 in
    Array.iter
      (fun x ->
        let d = x -. m in
        acc := !acc +. (d *. d))
      xs;
    !acc /. float_of_int (n - 1)
  end

(* --------------------------------------------------------------- *)
(* Student-t machinery for the sampling estimators' confidence      *)
(* intervals.                                                       *)

(* Lanczos approximation (g = 7, 9 coefficients); relative error below
   1e-13 over the positive reals — far more than a CI table needs. *)
let log_gamma =
  let coef =
    [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
       771.32342877765313; -176.61502916214059; 12.507343278686905;
       -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]
  in
  fun x ->
    if x <= 0.0 then invalid_arg "Stats.log_gamma: non-positive argument";
    let x = x -. 1.0 in
    let a = ref coef.(0) in
    for i = 1 to 8 do
      a := !a +. (coef.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a

(* Continued fraction for the incomplete beta function (modified Lentz;
   the betacf of Numerical Recipes).  Converges in a few dozen terms for
   the x < (a+1)/(a+b+2) regime the caller arranges. *)
let betacf a b x =
  let fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  (try
     for m = 1 to 300 do
       let fm = float_of_int m in
       let m2 = 2.0 *. fm in
       let step aa =
         d := 1.0 +. (aa *. !d);
         if Float.abs !d < fpmin then d := fpmin;
         c := 1.0 +. (aa /. !c);
         if Float.abs !c < fpmin then c := fpmin;
         d := 1.0 /. !d;
         !d *. !c
       in
       h := !h *. step (fm *. (b -. fm) *. x /. ((qam +. m2) *. (a +. m2)));
       let del =
         step (-.(a +. fm) *. (qab +. fm) *. x /. ((a +. m2) *. (qap +. m2)))
       in
       h := !h *. del;
       if Float.abs (del -. 1.0) < 3e-14 then raise Exit
     done
   with Exit -> ());
  !h

(* Regularized incomplete beta I_x(a, b). *)
let reg_inc_beta a b x =
  if x <= 0.0 then 0.0
  else if x >= 1.0 then 1.0
  else begin
    let ln_front =
      (a *. log x) +. (b *. log (1.0 -. x))
      +. log_gamma (a +. b) -. log_gamma a -. log_gamma b
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then
      exp ln_front *. betacf a b x /. a
    else 1.0 -. (exp ln_front *. betacf b a (1.0 -. x) /. b)
  end

(* CDF of Student's t with [df] degrees of freedom at [t] via the
   identity F(t) = 1 - I_{df/(df+t^2)}(df/2, 1/2) / 2 for t >= 0. *)
let t_cdf ~df t =
  let nu = float_of_int df in
  let tail = 0.5 *. reg_inc_beta (nu /. 2.0) 0.5 (nu /. (nu +. (t *. t))) in
  if t >= 0.0 then 1.0 -. tail else tail

let t_quantile ~df ~level =
  if df < 1 then invalid_arg "Stats.t_quantile: df must be >= 1";
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Stats.t_quantile: level must be in (0, 1)";
  (* Two-sided critical value c with P(|T| <= c) = level, i.e. the
     (1+level)/2 quantile: bracket then bisect the CDF (monotone, smooth;
     80 halvings put the error far below float noise on the answer). *)
  let p = (1.0 +. level) /. 2.0 in
  let hi = ref 1.0 in
  while t_cdf ~df !hi < p && !hi < 1e12 do
    hi := !hi *. 2.0
  done;
  let lo = ref 0.0 in
  for _ = 1 to 100 do
    let mid = 0.5 *. (!lo +. !hi) in
    if t_cdf ~df mid < p then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)

let confidence_interval ?(level = 0.95) xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Stats.confidence_interval: need >= 2 samples";
  let m = mean xs in
  let half =
    t_quantile ~df:(n - 1) ~level
    *. sqrt (sample_variance xs /. float_of_int n)
  in
  (m -. half, m +. half)

let geomean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geomean: empty";
  let acc = ref 0.0 in
  Array.iter
    (fun x ->
      if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
      acc := !acc +. log x)
    xs;
  exp (!acc /. float_of_int (Array.length xs))

(* nans sort after every finite value (the polymorphic [compare] puts
   them first, silently shifting every quantile of a poisoned array), so
   low percentiles of a partially-poisoned array still read the finite
   values and a fully-poisoned array reads nan. *)
let compare_nan_last a b =
  match (Float.is_nan a, Float.is_nan b) with
  | true, true -> 0
  | true, false -> 1
  | false, true -> -1
  | false, false -> Float.compare a b

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare_nan_last ys;
  ys

let percentile xs ~p =
  if Float.is_nan p || p < 0.0 || p > 100.0 then
    invalid_arg "Stats.percentile: p must be in [0, 100]";
  let n = Array.length xs in
  if n = 0 then Float.nan
  else begin
    let ys = sorted_copy xs in
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then ys.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)
    end
  end

let median xs = percentile xs ~p:50.0

(* Total on all of R^2: a zero or non-finite truth (an empty or dead
   measurement, not a bad estimate) and a non-finite estimate both yield
   nan, the "cell could not be evaluated" marker every aggregation layer
   is expected to skip-and-count rather than fold into a mean.  Raising
   here (the old contract) meant one degenerate cell aborted a whole
   validation matrix. *)
let relative_error ~truth ~estimate =
  if truth = 0.0 || not (Float.is_finite truth) || not (Float.is_finite estimate)
  then Float.nan
  else Float.abs (truth -. estimate) /. Float.abs truth

let signed_relative_error ~truth ~estimate =
  if truth = 0.0 then invalid_arg "Stats.signed_relative_error: zero truth";
  (estimate -. truth) /. truth

let normalize xs =
  let total = sum xs in
  if total = 0.0 then invalid_arg "Stats.normalize: zero sum";
  Array.map (fun x -> x /. total) xs

(* Same per-element result in the same (ascending) order as [normalize],
   so the filled buffer is bit-identical to a fresh [normalize] result —
   the streaming profile path relies on that equivalence.  Zeros are
   stored without dividing: [0.0 /. total] is exactly [+0.0] for any
   positive finite [total], and BBVs are two-thirds zeros, so skipping
   those fdivs is a real win in the per-interval hot path. *)
let normalize_into xs out =
  let n = Array.length xs in
  if Array.length out <> n then
    invalid_arg "Stats.normalize_into: length mismatch";
  let total = sum xs in
  if total = 0.0 then invalid_arg "Stats.normalize: zero sum";
  for i = 0 to n - 1 do
    let x = Array.unsafe_get xs i in
    Array.unsafe_set out i (if x = 0.0 then 0.0 else x /. total)
  done

let sq_distance a b =
  let n = Array.length a in
  if Array.length b <> n then invalid_arg "Stats.sq_distance: length mismatch";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = Array.unsafe_get a i -. Array.unsafe_get b i in
    acc := !acc +. (d *. d)
  done;
  !acc
