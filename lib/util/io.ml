(* Exception-safe file channel helpers.  Every writer in the repo goes
   through [with_out_file] so a raising body can never leak a channel or
   leave buffered output unflushed behind an exception. *)

let with_out_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let with_in_file path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> f ic)

let read_file path =
  with_in_file path (fun ic ->
      really_input_string ic (in_channel_length ic))
