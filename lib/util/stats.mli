(** Small descriptive-statistics toolkit used throughout the evaluation
    harness: means, deviations, weighted aggregates and the error metrics
    the paper reports (relative CPI error, speedup error). *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val weighted_mean : weights:float array -> float array -> float
(** [weighted_mean ~weights xs] is [sum w_i x_i / sum w_i].
    @raise Invalid_argument on length mismatch or zero total weight. *)

val variance : float array -> float
(** Population variance; 0 for arrays of length < 2. *)

val stddev : float array -> float

val sample_variance : float array -> float
(** Unbiased sample variance (the [n - 1] denominator) — what the
    sampling estimators feed their standard errors; 0 for arrays of
    length < 2. *)

val t_quantile : df:int -> level:float -> float
(** Two-sided Student-t critical value: the [c] with
    [P(|T_df| <= c) = level], e.g. [t_quantile ~df:10 ~level:0.95]
    is 2.228.  Computed from the regularized incomplete beta function;
    accurate to well below 1e-8 over the whole table.
    @raise Invalid_argument if [df < 1] or [level] is outside (0, 1). *)

val confidence_interval : ?level:float -> float array -> float * float
(** [(lo, hi)] of the Student-t confidence interval for the mean of the
    samples: [mean -/+ t * sqrt (sample_variance / n)].  [level] defaults
    to 0.95.  @raise Invalid_argument for fewer than two samples. *)

val geomean : float array -> float
(** Geometric mean of strictly-positive values.
    @raise Invalid_argument if any value is <= 0. *)

val median : float array -> float
(** [percentile ~p:50.0] (does not modify the input); nan for the empty
    array. *)

val percentile : float array -> p:float -> float
(** Linear-interpolation percentile.  Total over the array contents, and
    consistent with {!relative_error}'s nan contract: nan for the empty
    array, and nan elements sort after every finite value (so quantiles
    of a partially-poisoned array read the finite values first, and a
    fully-poisoned array reads nan).  Does not modify the input.
    @raise Invalid_argument unless [p] is in [[0, 100]]. *)

val relative_error : truth:float -> estimate:float -> float
(** [|truth - estimate| / |truth|]; the paper's CPI-error and
    speedup-error metric.  Total: when [truth = 0] or either argument is
    non-finite the result is [nan] — the "this cell could not be
    evaluated" marker.  Consumers aggregating many errors (the validate
    leaderboard, the figures) must skip-and-count non-finite values
    rather than fold them into means.  The result is never negative and
    is [nan] only in the cases above. *)

val signed_relative_error : truth:float -> estimate:float -> float
(** [(estimate - truth) / truth]; used for the per-phase bias columns of
    Tables 2 and 3, where the sign of the bias matters. *)

val sum : float array -> float
(** Numerically-stable (Kahan) sum. *)

val normalize : float array -> float array
(** Scale so elements sum to 1.  @raise Invalid_argument if the sum is 0. *)

val normalize_into : float array -> float array -> unit
(** [normalize_into xs out] fills the caller-provided buffer [out] with
    the normalized [xs], avoiding the per-call allocation of {!normalize};
    the result is bit-identical to [normalize xs].
    @raise Invalid_argument on length mismatch or zero sum. *)

val sq_distance : float array -> float array -> float
(** Squared Euclidean distance.  @raise Invalid_argument on length
    mismatch. *)
