(** Exception-safe file channel helpers. *)

val with_out_file : string -> (out_channel -> 'a) -> 'a
(** [with_out_file path f] opens [path] for writing, runs [f], and closes
    the channel even when [f] raises ([Fun.protect] semantics). *)

val with_in_file : string -> (in_channel -> 'a) -> 'a

val read_file : string -> string
(** The whole file as a string. *)
