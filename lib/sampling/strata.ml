module Stats = Cbsp_util.Stats
module Binary = Cbsp_compiler.Binary
module Layout = Cbsp_compiler.Layout
module Ast = Cbsp_source.Ast

let quantile_bins ~bins feature =
  if bins < 1 then invalid_arg "Strata.quantile_bins: bins must be >= 1";
  let thresholds =
    Array.init (bins - 1) (fun k ->
        Stats.percentile feature
          ~p:(100.0 *. float_of_int (k + 1) /. float_of_int bins))
  in
  Array.map
    (fun x ->
      Array.fold_left (fun acc t -> if x > t then acc + 1 else acc) 0 thresholds)
    feature

let access_mix (binary : Binary.t) ~bbvs =
  let n = binary.Binary.n_blocks in
  (* Static accesses-per-instruction rate of every block: BBVs count
     instructions per block, so interval accesses = sum_b bbv_b * rate_b. *)
  let rate = Array.make n 0.0 in
  Binary.iter_blocks
    (fun (b : Binary.mblock) ->
      if b.Binary.mb_insts > 0 then begin
        let accesses =
          List.fold_left
            (fun acc (a : Ast.access) -> acc + a.Ast.acc_count)
            b.Binary.mb_spills b.Binary.mb_accesses
        in
        rate.(b.Binary.mb_id) <-
          float_of_int accesses /. float_of_int b.Binary.mb_insts
      end)
    binary;
  Array.map
    (fun bbv ->
      if Array.length bbv <> n then
        invalid_arg "Strata.access_mix: BBV dimension mismatch";
      let insts = Stats.sum bbv in
      if insts = 0.0 then 0.0
      else begin
        let acc = ref 0.0 in
        for b = 0 to n - 1 do
          acc := !acc +. (bbv.(b) *. rate.(b))
        done;
        !acc /. insts
      end)
    bbvs

(* The fixed label space of [static_locality]: class 0 is the fallback
   for intervals with no (weighted) memory traffic at all. *)
let n_locality_classes = 6

let static_locality (binary : Binary.t) ~llc_bytes ~bbvs =
  if llc_bytes < 0 then
    invalid_arg "Strata.static_locality: negative LLC capacity";
  let n = binary.Binary.n_blocks in
  let layout = binary.Binary.layout in
  let resident a =
    let span =
      Layout.array_length layout ~array_id:a
      * Layout.array_elem_bytes layout ~array_id:a
    in
    span <= llc_bytes
  in
  (* rate.(c).(b) = class-[c] accesses per instruction of block [b]; the
     interval's label is the class with the largest BBV-weighted mass.
     Everything here is a pure function of the binary and the hierarchy's
     last-level capacity — no profiling, clustering or quantile pass. *)
  let rate = Array.init n_locality_classes (fun _ -> Array.make n 0.0) in
  Binary.iter_blocks
    (fun (b : Binary.mblock) ->
      if b.Binary.mb_insts > 0 then begin
        let insts = float_of_int b.Binary.mb_insts in
        let add c k =
          rate.(c).(b.Binary.mb_id) <-
            rate.(c).(b.Binary.mb_id) +. (float_of_int k /. insts)
        in
        (* Spills are stack traffic: a few hot frames, always resident. *)
        add 1 b.Binary.mb_spills;
        List.iter
          (fun (a : Ast.access) ->
            let c =
              match a.Ast.acc_pattern with
              | Ast.Seq _ -> if resident a.Ast.acc_array then 1 else 2
              | Ast.Rand | Ast.Hot _ ->
                if resident a.Ast.acc_array then 3 else 4
              | Ast.Chase -> 5
            in
            add c a.Ast.acc_count)
          b.Binary.mb_accesses
      end)
    binary;
  Array.map
    (fun bbv ->
      if Array.length bbv <> n then
        invalid_arg "Strata.static_locality: BBV dimension mismatch";
      let best = ref 0 and best_mass = ref 0.0 in
      for c = 0 to n_locality_classes - 1 do
        let mass = ref 0.0 in
        for b = 0 to n - 1 do
          mass := !mass +. (bbv.(b) *. rate.(c).(b))
        done;
        if !mass > !best_mass then begin
          best := c;
          best_mass := !mass
        end
      done;
      !best)
    bbvs

let allocate ~scores ~sizes ~total =
  let h = Array.length sizes in
  if h = 0 then invalid_arg "Strata.allocate: no strata";
  Array.iter
    (fun s -> if s < 0 then invalid_arg "Strata.allocate: negative size")
    sizes;
  if Array.length scores <> h then
    invalid_arg "Strata.allocate: scores length mismatch";
  let capacity = Array.fold_left ( + ) 0 sizes in
  let nonempty = Array.fold_left (fun a s -> if s > 0 then a + 1 else a) 0 sizes in
  if total < nonempty then
    invalid_arg
      (Printf.sprintf "Strata.allocate: budget %d < %d non-empty strata" total
         nonempty);
  let total = min total capacity in
  let alloc = Array.map (fun s -> min s 1) sizes in
  let rem = ref (total - Array.fold_left ( + ) 0 alloc) in
  (* Second pass: a second sample per stratum (by descending score) while
     the budget lasts, so every stratum's variance is estimable. *)
  let order = Array.init h Fun.id in
  Array.sort
    (fun i j ->
      match compare scores.(j) scores.(i) with 0 -> compare i j | c -> c)
    order;
  Array.iter
    (fun j ->
      if !rem > 0 && sizes.(j) >= 2 && alloc.(j) < 2 then begin
        alloc.(j) <- 2;
        decr rem
      end)
    order;
  (* Remaining budget: highest-averages (D'Hondt) by score, capped by
     stratum size — approximates Neyman allocation under the integer
     constraints and converges to a census as total approaches the
     population. *)
  while !rem > 0 do
    let best = ref (-1) and best_avg = ref neg_infinity in
    for j = 0 to h - 1 do
      if alloc.(j) < sizes.(j) then begin
        let avg = scores.(j) /. float_of_int (alloc.(j) + 1) in
        if avg > !best_avg then begin
          best_avg := avg;
          best := j
        end
      end
    done;
    alloc.(!best) <- alloc.(!best) + 1;
    decr rem
  done;
  alloc
