module Stats = Cbsp_util.Stats
module Rng = Cbsp_util.Rng

type estimate = {
  e_method : string;
  e_point : float;
  e_half : float;
  e_level : float;
  e_df : int;
  e_n : int;
  e_population : int;
  e_indices : int array;
  e_weights : float array;
  e_cost_insts : float;
}

let ci_lo e = e.e_point -. e.e_half

let ci_hi e = e.e_point +. e.e_half

let covers e ~truth = truth >= ci_lo e && truth <= ci_hi e

(* ------------------------------------------------------------------ *)
(* Selection helpers                                                   *)

let live_indices insts =
  let l = ref [] in
  for i = Array.length insts - 1 downto 0 do
    if insts.(i) > 0.0 then l := i :: !l
  done;
  Array.of_list !l

let check ~name ~insts ~cycles ~n =
  if Array.length cycles <> Array.length insts then
    invalid_arg (name ^ ": insts/cycles length mismatch");
  if n <= 0 then invalid_arg (name ^ ": sample size must be positive");
  let live = live_indices insts in
  if Array.length live = 0 then invalid_arg (name ^ ": no non-empty intervals");
  live

(* Partial Fisher-Yates: an SRS without replacement of [n] entries of
   [pool], returned ascending. *)
let take_srs rng ~n pool =
  let a = Array.copy pool in
  let len = Array.length a in
  for j = 0 to n - 1 do
    let k = j + Rng.int rng ~bound:(len - j) in
    let t = a.(j) in
    a.(j) <- a.(k);
    a.(k) <- t
  done;
  let s = Array.sub a 0 n in
  Array.sort compare s;
  s

(* ------------------------------------------------------------------ *)
(* The ratio estimator and its variance                                *)

(* (sizes, costs, size sum, ratio) of a selection of original indices. *)
let ratio_parts ~insts ~cycles sel =
  let m = Array.map (fun i -> insts.(i)) sel in
  let c = Array.map (fun i -> cycles.(i)) sel in
  let msum = Stats.sum m in
  (m, c, msum, Stats.sum c /. msum)

(* Ratio-estimator variance for a size-n SRS (without replacement) from
   a [pop]-interval population: residual technique with finite-population
   correction.  [None] when no variance can be estimated (a single
   sample with part of the population unsampled). *)
let residual_variance ~pop (m, c, msum, r) =
  let n = Array.length m in
  let fpc = 1.0 -. (float_of_int n /. float_of_int pop) in
  if fpc <= 0.0 then Some 0.0
  else if n < 2 then None
  else begin
    let d = Array.init n (fun j -> c.(j) -. (r *. m.(j))) in
    let s2 = Stats.sample_variance d in
    let mbar = msum /. float_of_int n in
    Some (fpc *. s2 /. (float_of_int n *. mbar *. mbar))
  end

let simple_estimate ~method_ ~level ~pop ~insts ~cycles sel =
  let ((m, _, msum, r) as parts) = ratio_parts ~insts ~cycles sel in
  let n = Array.length sel in
  let df = max 1 (n - 1) in
  let half =
    match residual_variance ~pop parts with
    | Some v -> Stats.t_quantile ~df ~level *. sqrt v
    | None -> Float.infinity
  in
  { e_method = method_; e_point = r; e_half = half; e_level = level;
    e_df = df; e_n = n; e_population = pop; e_indices = sel;
    e_weights = Array.map (fun mi -> mi /. msum) m; e_cost_insts = msum }

(* ------------------------------------------------------------------ *)
(* The three samplers                                                  *)

let srs ?(level = 0.95) ~rng ~n ~insts ~cycles () =
  let live = check ~name:"Sampler.srs" ~insts ~cycles ~n in
  let pop = Array.length live in
  let n = min n pop in
  simple_estimate ~method_:"srs" ~level ~pop ~insts ~cycles
    (take_srs rng ~n live)

let systematic ?(level = 0.95) ~rng ~n ~insts ~cycles () =
  let live = check ~name:"Sampler.systematic" ~insts ~cycles ~n in
  let pop = Array.length live in
  let n = min n pop in
  (* Every step-th live interval from a random fractional start; step >= 1
     so the floored positions are strictly increasing (all distinct). *)
  let step = float_of_int pop /. float_of_int n in
  let start = Rng.float rng *. step in
  let sel =
    Array.init n (fun k ->
        live.(min (pop - 1) (int_of_float (start +. (float_of_int k *. step)))))
  in
  simple_estimate ~method_:"systematic" ~level ~pop ~insts ~cycles sel

let stratified ?(level = 0.95) ?(name = "stratified") ?proxy ~rng ~n ~strata
    ~insts ~cycles () =
  let fname = "Sampler." ^ name in
  let live = check ~name:fname ~insts ~cycles ~n in
  if Array.length strata <> Array.length insts then
    invalid_arg (fname ^ ": strata length mismatch");
  (match proxy with
   | Some p when Array.length p <> Array.length insts ->
     invalid_arg (fname ^ ": proxy length mismatch")
   | _ -> ());
  let pop = Array.length live in
  let n = min n pop in
  (* Group live intervals by stratum label, dropping labels no live
     interval carries. *)
  let max_label =
    Array.fold_left
      (fun acc i ->
        if strata.(i) < 0 then invalid_arg (fname ^ ": negative stratum label");
        max acc strata.(i))
      0 live
  in
  let buckets = Array.make (max_label + 1) [] in
  for j = Array.length live - 1 downto 0 do
    let i = live.(j) in
    buckets.(strata.(i)) <- i :: buckets.(strata.(i))
  done;
  let groups =
    Array.of_list
      (List.filter_map
         (fun b -> if b = [] then None else Some (Array.of_list b))
         (Array.to_list buckets))
  in
  let h = Array.length groups in
  (* Every stratum must be sampled at least once or its weight share is
     lost, so the budget is raised to the stratum count when below it. *)
  let n = max n h in
  (* Phase-1 knowledge: exact per-stratum instruction shares, and the
     proxy spread that drives Neyman allocation. *)
  let stratum_insts =
    Array.map (fun g -> Stats.sum (Array.map (fun i -> insts.(i)) g)) groups
  in
  let total_insts = Stats.sum stratum_insts in
  let w = Array.map (fun m -> m /. total_insts) stratum_insts in
  let spread =
    match proxy with
    | None -> Array.make h 1.0
    | Some p ->
      Array.map (fun g -> Stats.stddev (Array.map (fun i -> p.(i)) g)) groups
  in
  let scores = Array.init h (fun j -> w.(j) *. spread.(j)) in
  let scores =
    if Array.for_all (fun s -> s <= 0.0) scores then w else scores
  in
  let alloc =
    Strata.allocate ~scores ~sizes:(Array.map Array.length groups) ~total:n
  in
  (* Sample each stratum by SRS and combine: point = sum_h W_h R_h,
     variance = sum_h W_h^2 Var_h, weights scaled by W_h within each
     stratum's sample. *)
  let point = ref 0.0 in
  let var = ref 0.0 in
  let inestimable = ref false in
  (* Satterthwaite's effective df: (sum g_h)^2 / sum g_h^2/(n_h - 1) with
     g_h = W_h^2 Var_h.  Sum_h (n_h - 1) overstates the df when one
     stratum dominates the variance (its few samples are all the
     information there is), which makes the t quantile too small and the
     intervals undercover. *)
  let gsum = ref 0.0 in
  let gdenom = ref 0.0 in
  let cost = ref 0.0 in
  let weighted = ref [] in
  for j = 0 to h - 1 do
    let sel = take_srs rng ~n:alloc.(j) groups.(j) in
    let ((m, _, msum, r) as parts) = ratio_parts ~insts ~cycles sel in
    point := !point +. (w.(j) *. r);
    (match residual_variance ~pop:(Array.length groups.(j)) parts with
     | Some v ->
       let g = w.(j) *. w.(j) *. v in
       var := !var +. g;
       if g > 0.0 then begin
         (* g > 0 implies n_h >= 2 (a single-sample stratum is either a
            census, v = 0, or inestimable). *)
         gsum := !gsum +. g;
         gdenom := !gdenom +. (g *. g /. float_of_int (Array.length sel - 1))
       end
     | None -> inestimable := true);
    cost := !cost +. msum;
    Array.iteri
      (fun k i -> weighted := (i, w.(j) *. m.(k) /. msum) :: !weighted)
      sel
  done;
  let pairs = Array.of_list !weighted in
  Array.sort compare pairs;
  let df =
    if !gdenom <= 0.0 then 1
    else max 1 (int_of_float (!gsum *. !gsum /. !gdenom))
  in
  let half =
    if !inestimable then Float.infinity
    else Stats.t_quantile ~df ~level *. sqrt !var
  in
  { e_method = name; e_point = !point; e_half = half; e_level = level;
    e_df = df; e_n = Array.length pairs; e_population = pop;
    e_indices = Array.map fst pairs; e_weights = Array.map snd pairs;
    e_cost_insts = !cost }

(* ------------------------------------------------------------------ *)
(* Cross-binary speedup                                                *)

type ratio_ci = { r_point : float; r_half : float; r_level : float }

let speedup ~a ~insts_a ~b ~insts_b =
  if a.e_level <> b.e_level then invalid_arg "Sampler.speedup: level mismatch";
  if a.e_point <= 0.0 || b.e_point <= 0.0 then
    invalid_arg "Sampler.speedup: non-positive estimate";
  let point = a.e_point *. insts_a /. (b.e_point *. insts_b) in
  let rel e = e.e_half /. e.e_point in
  let rel_half = sqrt ((rel a *. rel a) +. (rel b *. rel b)) in
  { r_point = point; r_half = point *. rel_half; r_level = a.e_level }
