(** Statistical sampling estimators for whole-program CPI — the
    alternative to SimPoint's clustering, after Ekman's two-phase
    stratified CPU-simulation sampling.

    The population is the set of per-interval measurements the pipeline
    already collects: interval [i] has a size [insts.(i)] (instructions)
    and a cost [cycles.(i)].  The target quantity is the population ratio
    [sum cycles / sum insts] — whole-program CPI (the same machinery
    estimates any per-interval event total, e.g. cache misses, by passing
    the event counts as [cycles]).  Each estimator picks a subset of
    intervals ("simulate only these in detail"), forms the weighted point
    estimate, and attaches a Student-t confidence interval — the error
    bar SimPoint's single deterministic choice cannot provide.

    All estimators use the classical ratio estimator with the residual
    variance technique and finite-population correction (Cochran,
    {e Sampling Techniques}, ch. 6): for a sample [s],
    [R = sum_s cycles / sum_s insts], residuals
    [d_i = cycles_i - R insts_i], and
    [Var(R) ~= (1 - n/N) s_d^2 / (n m_bar^2)].  Two invariants hold for
    every estimator (and are property-tested): the reported per-sample
    weights sum to 1, and when the sample is the whole population the
    point estimate is exact and the half-width is 0.

    Intervals with [insts = 0] (the possibly-empty trailing interval) are
    excluded from the population, mirroring how clustering skips them. *)

type estimate = {
  e_method : string;        (** ["srs"], ["systematic"], ["strat-phase"]... *)
  e_point : float;          (** Estimated CPI (or metric ratio). *)
  e_half : float;           (** CI half-width; 0 for a census,
                                [infinity] when inestimable (n < 2). *)
  e_level : float;          (** Confidence level, e.g. 0.95. *)
  e_df : int;               (** Degrees of freedom of the t quantile. *)
  e_n : int;                (** Intervals simulated in detail (phase 2). *)
  e_population : int;       (** Non-empty intervals available. *)
  e_indices : int array;    (** Sampled interval indices, ascending. *)
  e_weights : float array;  (** Per-sample estimate weights (parallel to
                                [e_indices]); they sum to 1. *)
  e_cost_insts : float;     (** Instructions inside the sampled intervals —
                                the detailed-simulation cost of the
                                estimate. *)
}

val ci_lo : estimate -> float
(** [e_point - e_half]. *)

val ci_hi : estimate -> float
(** [e_point + e_half]. *)

val covers : estimate -> truth:float -> bool
(** Does the confidence interval contain [truth]?  The coverage metric:
    a well-calibrated 95% estimator covers on ~95% of seeds. *)

val srs :
  ?level:float ->
  rng:Cbsp_util.Rng.t ->
  n:int ->
  insts:float array ->
  cycles:float array ->
  unit ->
  estimate
(** Simple random sampling without replacement of [n] intervals ([n] is
    clamped to the population size).  [level] defaults to 0.95.
    @raise Invalid_argument on length mismatch, [n <= 0], or an empty
    population. *)

val systematic :
  ?level:float ->
  rng:Cbsp_util.Rng.t ->
  n:int ->
  insts:float array ->
  cycles:float array ->
  unit ->
  estimate
(** Systematic sampling: every [N/n]-th interval from a random start.
    Captures periodic program structure cheaply; its variance (and hence
    CI) is approximated by the SRS formula, the standard practice when
    the period of the program and of the sampler do not resonate.
    @raise Invalid_argument as {!srs}. *)

val stratified :
  ?level:float ->
  ?name:string ->
  ?proxy:float array ->
  rng:Cbsp_util.Rng.t ->
  n:int ->
  strata:int array ->
  insts:float array ->
  cycles:float array ->
  unit ->
  estimate
(** Two-phase stratified sampling: [strata.(i)] is interval [i]'s stratum
    label from the cheap phase-1 pass (k-means phase or instruction-mix
    quantile bin).  Within each stratum, intervals are drawn by SRS; the
    per-stratum sample sizes come from Neyman allocation over the phase-1
    [proxy] (per-interval spread proxy, e.g. memory-access mix) — or
    proportional to instruction share when [proxy] is omitted.  Every
    non-empty stratum receives at least one sample, so [n] is raised to
    the stratum count if below it.  The estimate is
    [sum_h W_h R_h] with [W_h] the stratum's (phase-1, exact) instruction
    share; the variance sums the per-stratum SRS terms and the t quantile
    uses Satterthwaite's effective degrees of freedom
    [(sum_h g_h)^2 / sum_h g_h^2/(n_h - 1)] over the variance
    contributions [g_h = W_h^2 Var_h] — [sum_h (n_h - 1)] would overstate
    the df (and undercover) when one stratum dominates the variance.
    [name] overrides the reported method name (default ["stratified"]).
    @raise Invalid_argument on length mismatches, negative labels,
    [n <= 0], or an empty population. *)

(** {1 Cross-binary speedup with propagated confidence} *)

type ratio_ci = {
  r_point : float;  (** Estimated speedup (cycles A / cycles B). *)
  r_half : float;   (** CI half-width at [r_level]. *)
  r_level : float;
}

val speedup :
  a:estimate -> insts_a:float -> b:estimate -> insts_b:float -> ratio_ci
(** Speedup of binary [a] over binary [b]
    ([cpi_a * insts_a / (cpi_b * insts_b)], matching
    [Metrics.true_speedup]'s cycle-ratio convention) with the CI
    propagated by the delta method: the relative half-widths of the two
    independent CPI estimates add in quadrature.  This is what lets the
    harness report "A is 1.31x +/- 0.04 faster than B at 95%".
    @raise Invalid_argument if the levels differ or an estimate is not
    positive. *)
