(** Phase-1 stratification for two-phase sampling: ways of cutting the
    interval population into strata before any detailed simulation, plus
    the Neyman-style allocation of the phase-2 budget.

    Two stratifications are provided out of the box, both computable from
    the cheap BBV pass alone:

    - {b k-means phases} — reuse SimPoint's clustering labels as strata
      (the pipeline passes its [cl_phase_of] array straight through);
    - {b instruction-mix quantiles} — bin intervals by their
      memory-access mix ({!access_mix}), a static-rate-weighted BBV
      reduction that needs no cache model;
    - {b static locality classes} — label intervals by the dominant
      stride/dependence class of their traffic ({!static_locality}),
      derived from the binary's access patterns and array spans alone. *)

val quantile_bins : bins:int -> float array -> int array
(** [quantile_bins ~bins feature] labels each element with its quantile
    bin in [0, bins): element [x] gets the number of interior quantile
    thresholds strictly below [x].  Heavily tied features collapse bins
    (fewer distinct labels), which stratified sampling handles by
    dropping empty strata.  @raise Invalid_argument if [bins < 1]. *)

val access_mix :
  Cbsp_compiler.Binary.t -> bbvs:float array array -> float array
(** Per-interval memory-access mix: accesses (spills included) per
    instruction, reconstructed from the interval's BBV and the binary's
    static per-block access rates.  A phase-1 proxy for memory-boundness
    — intervals with high mix tend to have high and variable CPI — that
    costs one array product per interval, no simulation.  Intervals with
    an all-zero BBV get mix 0.
    @raise Invalid_argument if a BBV's dimension is not [n_blocks]. *)

val n_locality_classes : int
(** Size of {!static_locality}'s label space (6). *)

val static_locality :
  Cbsp_compiler.Binary.t ->
  llc_bytes:int ->
  bbvs:float array array ->
  int array
(** Per-interval dominant-locality-class labels in
    [0, n_locality_classes): 0 = no weighted traffic (compute), 1 =
    LLC-resident regular (unit/fixed-stride [Seq] arrays fitting in
    [llc_bytes], plus stack spills), 2 = DRAM-bound regular, 3 =
    LLC-resident irregular ([Rand]/[Hot]), 4 = DRAM-bound irregular, 5 =
    dependent pointer chase.  Each interval gets the class with the
    largest BBV-weighted accesses-per-instruction mass.  Unlike
    {!quantile_bins} over {!access_mix}, the label space is fixed by the
    binary and the hierarchy geometry — no per-population quantile or
    clustering pass — so it is the "profile-free" stratification of the
    static locality analyzer.
    @raise Invalid_argument if a BBV's dimension is not [n_blocks] or
    [llc_bytes < 0]. *)

val allocate :
  scores:float array -> sizes:int array -> total:int -> int array
(** Split a phase-2 budget of [total] samples over strata of the given
    [sizes] (population counts): every non-empty stratum gets one sample,
    then one more while budget lasts (so its variance is estimable), then
    the rest go greedily by highest average [scores.(h) / (alloc_h + 1)]
    — the D'Hondt rule, which approximates proportional-to-score (Neyman,
    when scores are [W_h * S_h]) allocation under the integer and
    per-stratum-size constraints.  Pass the sizes themselves as scores
    for plain proportional allocation.  Allocations never exceed sizes; a
    [total] above the population is clamped.
    @raise Invalid_argument if [total] is below the number of non-empty
    strata, a size is negative, or [scores] has the wrong length. *)
