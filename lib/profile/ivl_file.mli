(** [cbsp-ivl/1]: the compact binary interval format the artifact store
    keeps on disk — the binary successor to the text {!Bbv_file} format
    (which remains for SimPoint 3.0 interchange).

    Layout (all multi-byte integers are varints, LEB128-style,
    little-endian groups of 7 bits):

    {v
    "cbsp-ivl/1\n"                     magic
    varint n_blocks, n_extras, flags   header (flags reserved, must be 0)
    u32le adler32(header varints)      header checksum
    record*                            payload
    0x00 varint n_records              trailer
    u32le adler32(payload)             payload checksum
    v}

    Each record is [0x01], varint instruction count, float cycles,
    [n_extras] floats, then the BBV sparsely: varint nnz followed by nnz
    (index-delta varint, float count) pairs with strictly increasing
    indices.  Floats use an integral fast path — a non-negative integral
    value [n < 2^60] is the even varint [2n]; anything else (denormals,
    non-integral, negative, -0.0) is the escape varint [1] followed by
    the raw IEEE-754 bits as a varint.  Decoding is exact: every float
    round-trips bit for bit.

    All malformed-input failures raise [Invalid_argument] with an
    ["Ivl_file: ..."] message naming what was wrong (bad magic, checksum
    mismatch, truncation, out-of-range block id) — corrupt artifacts are
    user errors, not crashes.

    Encode/decode are instrumented: [ivl.bytes_written]/[ivl.bytes_read]
    counters, an [ivl.compression_ratio] histogram (dense-float64 size of
    the same records divided by encoded size), and [ivl.encode]/
    [ivl.decode] tracer spans. *)

val encode : n_blocks:int -> Interval.interval array -> string
(** Serialize intervals (BBVs must all be [n_blocks] long, extras all the
    same length).  @raise Invalid_argument on ragged input. *)

val decode : string -> Interval.interval array
(** Inflate a full profile (each interval gets fresh arrays).
    @raise Invalid_argument on malformed input. *)

val decode_fold :
  string -> init:'a -> f:('a -> Interval.interval -> 'a) -> 'a
(** Stream the records through [f] without materializing the profile.
    The interval passed to [f] aliases one scratch BBV/extras pair reused
    across records — the same contract as {!Interval.emit}: copy
    anything you retain. *)

(** {1 Streaming writer}

    Pairs with the streaming interval builders: [write w] is a valid
    {!Interval.emit}, so a profiling pass can go straight to disk holding
    O(1 interval) of memory. *)

type writer

val writer : path:string -> n_blocks:int -> n_extras:int -> writer
(** Open [path] and write the header. *)

val write : writer -> Interval.interval -> unit
(** Append one record.  @raise Invalid_argument if the interval's
    dimensions disagree with the header or the writer is closed. *)

val close : writer -> unit
(** Write the trailer and close the file.  Idempotent. *)

val written_bytes : writer -> int
(** Bytes written so far (header + records; + trailer once closed). *)

(** {1 Whole-file convenience} *)

val save : path:string -> n_blocks:int -> Interval.interval array -> unit

val load : path:string -> Interval.interval array

val read_fold : path:string -> init:'a -> f:('a -> Interval.interval -> 'a) -> 'a
