module Marker = Cbsp_compiler.Marker
module Executor = Cbsp_exec.Executor
module Metrics = Cbsp_obs.Metrics

type interval = {
  insts : int;
  cycles : float;
  extras : float array;
  bbv : float array;
}

type boundary = { bd_key : Marker.key; bd_count : int }

type emit = interval -> unit

let cpi interval =
  if interval.insts = 0 then invalid_arg "Interval.cpi: empty interval";
  interval.cycles /. float_of_int interval.insts

(* The memory-model gauge: peak number of full-width (n_blocks-wide) BBV
   buffers held by any single profiling pass — scratch plus retained
   copies.  Streaming passes stay at a small constant; materializing
   passes report interval-count + 1, which is exactly the regression the
   suite-smoke CI budget catches.  The max update is racy across domains
   (two passes may interleave reads), which can only ever under-report by
   one concurrent pass's peak — fine for a budget gate. *)
let m_scratch = lazy (Metrics.gauge "profile.scratch_intervals")

let note_scratch_peak n =
  let g = Lazy.force m_scratch in
  if n > Metrics.gauge_value g then Metrics.set g n

(* Shared accumulator: current-interval instruction count, optional BBV,
   and the cycle baseline for delta sampling.  Completed intervals leave
   through [emit]; the emitted interval's [bbv] and [extras] alias
   internal scratch buffers that are overwritten at the next cut, so a
   consumer that retains them must copy (the materializing readers
   below do). *)
type acc = {
  collect_bbv : bool;
  n_blocks : int;
  cycles : unit -> float;
  extras : unit -> float array;
  emit : emit;
  mutable cur_insts : int;
  cur_bbv : float array;
  mutable extras_scratch : float array;
  mutable cycle_base : float;
  mutable extras_base : float array;
  mutable n_emitted : int;
  mutable finished : bool;
}

let make_acc ?(cycles = fun () -> 0.0) ?(extras = fun () -> [||]) ~collect_bbv
    ~n_blocks ~emit () =
  { collect_bbv; n_blocks; cycles; extras; emit;
    cur_insts = 0;
    cur_bbv = (if collect_bbv then Array.make n_blocks 0.0 else [||]);
    extras_scratch = [||]; cycle_base = 0.0; extras_base = extras ();
    n_emitted = 0; finished = false }

let acc_block acc id insts =
  acc.cur_insts <- acc.cur_insts + insts;
  if acc.collect_bbv then
    acc.cur_bbv.(id) <- acc.cur_bbv.(id) +. float_of_int insts

let acc_cut acc =
  let now = acc.cycles () in
  let extras_now = acc.extras () in
  let n_extras = Array.length extras_now in
  if Array.length acc.extras_scratch <> n_extras then
    acc.extras_scratch <- Array.make n_extras 0.0;
  for i = 0 to n_extras - 1 do
    acc.extras_scratch.(i) <- extras_now.(i) -. acc.extras_base.(i)
  done;
  acc.emit
    { insts = acc.cur_insts; cycles = now -. acc.cycle_base;
      extras = acc.extras_scratch; bbv = acc.cur_bbv };
  acc.cur_insts <- 0;
  if acc.collect_bbv then Array.fill acc.cur_bbv 0 acc.n_blocks 0.0;
  acc.cycle_base <- now;
  acc.extras_base <- extras_now;
  acc.n_emitted <- acc.n_emitted + 1

(* The trailing interval is always emitted, even when empty: recorder and
   follower must agree that a run with B boundaries has exactly B+1
   intervals, or phase labels would shift between binaries whose suffix
   after the last boundary happens to be empty in one and not another. *)
let acc_finish acc =
  if not acc.finished then begin
    acc_cut acc;
    acc.finished <- true;
    note_scratch_peak (if acc.collect_bbv then 1 else 0)
  end;
  acc.n_emitted

(* --- streaming builders ------------------------------------------------ *)

let fli_stream ~n_blocks ~target ?cycles ?extras ~emit () =
  if target <= 0 then invalid_arg "Interval.fli_observer: target must be positive";
  let acc = make_acc ?cycles ?extras ~collect_bbv:true ~n_blocks ~emit () in
  let obs =
    { Executor.null_observer with
      Executor.on_block =
        (fun id insts ->
          (* Cut before the block that would extend a full interval. *)
          if acc.cur_insts >= target then acc_cut acc;
          acc_block acc id insts) }
  in
  (obs, fun () -> acc_finish acc)

let vli_recorder_stream ~n_blocks ~target ~mappable ?cycles ?extras ~emit () =
  if target <= 0 then invalid_arg "Interval.vli_recorder: target must be positive";
  let acc = make_acc ?cycles ?extras ~collect_bbv:true ~n_blocks ~emit () in
  let key_counts = Marker.Table.create 256 in
  let boundaries_rev = ref [] in
  let obs =
    { Executor.on_block = (fun id insts -> acc_block acc id insts);
      on_access = (fun _ _ -> ());
      on_marker =
        (fun key ->
          if mappable key then begin
            let count =
              match Marker.Table.find_opt key_counts key with
              | Some r ->
                incr r;
                !r
              | None ->
                Marker.Table.add key_counts key (ref 1);
                1
            in
            if acc.cur_insts >= target then begin
              boundaries_rev := { bd_key = key; bd_count = count } :: !boundaries_rev;
              acc_cut acc
            end
          end) }
  in
  let finish () =
    let n = acc_finish acc in
    (n, Array.of_list (List.rev !boundaries_rev))
  in
  (obs, finish)

let vli_follower_stream ?n_blocks ~boundaries ?cycles ?extras ~emit () =
  let collect_bbv, n_blocks =
    match n_blocks with Some n -> (true, n) | None -> (false, 0)
  in
  let acc = make_acc ?cycles ?extras ~collect_bbv ~n_blocks ~emit () in
  let key_counts = Marker.Table.create 256 in
  let next = ref 0 in
  let total = Array.length boundaries in
  let obs =
    { Executor.on_block = (fun id insts -> acc_block acc id insts);
      on_access = (fun _ _ -> ());
      on_marker =
        (fun key ->
          if !next < total then begin
            let count =
              match Marker.Table.find_opt key_counts key with
              | Some r ->
                incr r;
                !r
              | None ->
                Marker.Table.add key_counts key (ref 1);
                1
            in
            let b = boundaries.(!next) in
            if Marker.equal b.bd_key key && b.bd_count = count then begin
              incr next;
              acc_cut acc
            end
          end) }
  in
  let finish () =
    if !next < total then
      invalid_arg
        (Printf.sprintf
           "Interval.vli_follower: only %d of %d boundaries reached — \
            boundaries do not belong to this (program, input)"
           !next total);
    acc_finish acc
  in
  (obs, finish)

(* --- materializing wrappers -------------------------------------------- *)

(* Copy each emitted interval out of the scratch buffers and collect; the
   values are bit-identical to what the pre-streaming accumulator built
   (same fills, same increments, same delta order).  [copies] counts
   retained full-width BBVs so the materialized path shows up honestly in
   the scratch gauge. *)
let collector () =
  let done_rev = ref [] in
  let copies = ref 0 in
  let emit iv =
    if Array.length iv.bbv > 0 then incr copies;
    done_rev :=
      { iv with bbv = Array.copy iv.bbv; extras = Array.copy iv.extras }
      :: !done_rev
  in
  let collect () =
    (* +1 for the scratch buffer that was live alongside the copies. *)
    if !copies > 0 then note_scratch_peak (!copies + 1);
    Array.of_list (List.rev !done_rev)
  in
  (emit, collect)

let memoized f =
  let cache = ref None in
  fun () ->
    match !cache with
    | Some v -> v
    | None ->
      let v = f () in
      cache := Some v;
      v

let fli_observer ~n_blocks ~target ?cycles ?extras () =
  let emit, collect = collector () in
  let obs, finish = fli_stream ~n_blocks ~target ?cycles ?extras ~emit () in
  let read =
    memoized (fun () ->
        let (_ : int) = finish () in
        collect ())
  in
  (obs, read)

let vli_recorder ~n_blocks ~target ~mappable ?cycles ?extras () =
  let emit, collect = collector () in
  let obs, finish =
    vli_recorder_stream ~n_blocks ~target ~mappable ?cycles ?extras ~emit ()
  in
  let read =
    memoized (fun () ->
        let (_ : int), boundaries = finish () in
        (collect (), boundaries))
  in
  (obs, read)

let vli_follower ?n_blocks ~boundaries ?cycles ?extras () =
  let emit, collect = collector () in
  let obs, finish =
    vli_follower_stream ?n_blocks ~boundaries ?cycles ?extras ~emit ()
  in
  let read =
    memoized (fun () ->
        let (_ : int) = finish () in
        collect ())
  in
  (obs, read)
