module Marker = Cbsp_compiler.Marker
module Executor = Cbsp_exec.Executor

type interval = {
  insts : int;
  cycles : float;
  extras : float array;
  bbv : float array;
}

type boundary = { bd_key : Marker.key; bd_count : int }

let cpi interval =
  if interval.insts = 0 then invalid_arg "Interval.cpi: empty interval";
  interval.cycles /. float_of_int interval.insts

(* Shared accumulator: current-interval instruction count, optional BBV,
   and the cycle baseline for delta sampling. *)
type acc = {
  collect_bbv : bool;
  n_blocks : int;
  cycles : unit -> float;
  extras : unit -> float array;
  mutable cur_insts : int;
  mutable cur_bbv : float array;
  mutable cycle_base : float;
  mutable extras_base : float array;
  mutable done_rev : interval list;
  mutable finalized : interval array option;
}

let make_acc ?(cycles = fun () -> 0.0) ?(extras = fun () -> [||]) ~collect_bbv
    ~n_blocks () =
  { collect_bbv; n_blocks; cycles; extras; cur_insts = 0;
    cur_bbv = (if collect_bbv then Array.make n_blocks 0.0 else [||]);
    cycle_base = 0.0; extras_base = extras (); done_rev = []; finalized = None }

let acc_block acc id insts =
  acc.cur_insts <- acc.cur_insts + insts;
  if acc.collect_bbv then
    acc.cur_bbv.(id) <- acc.cur_bbv.(id) +. float_of_int insts

let acc_cut acc =
  let now = acc.cycles () in
  let extras_now = acc.extras () in
  let interval =
    { insts = acc.cur_insts; cycles = now -. acc.cycle_base;
      extras = Array.mapi (fun i v -> v -. acc.extras_base.(i)) extras_now;
      bbv = acc.cur_bbv }
  in
  acc.done_rev <- interval :: acc.done_rev;
  acc.cur_insts <- 0;
  acc.cur_bbv <- (if acc.collect_bbv then Array.make acc.n_blocks 0.0 else [||]);
  acc.cycle_base <- now;
  acc.extras_base <- extras_now

(* The trailing interval is always emitted, even when empty: recorder and
   follower must agree that a run with B boundaries has exactly B+1
   intervals, or phase labels would shift between binaries whose suffix
   after the last boundary happens to be empty in one and not another. *)
let acc_finalize acc =
  match acc.finalized with
  | Some arr -> arr
  | None ->
    acc_cut acc;
    let arr = Array.of_list (List.rev acc.done_rev) in
    acc.finalized <- Some arr;
    arr

let fli_observer ~n_blocks ~target ?cycles ?extras () =
  if target <= 0 then invalid_arg "Interval.fli_observer: target must be positive";
  let acc = make_acc ?cycles ?extras ~collect_bbv:true ~n_blocks () in
  let obs =
    { Executor.null_observer with
      Executor.on_block =
        (fun id insts ->
          (* Cut before the block that would extend a full interval. *)
          if acc.cur_insts >= target then acc_cut acc;
          acc_block acc id insts) }
  in
  (obs, fun () -> acc_finalize acc)

let vli_recorder ~n_blocks ~target ~mappable ?cycles ?extras () =
  if target <= 0 then invalid_arg "Interval.vli_recorder: target must be positive";
  let acc = make_acc ?cycles ?extras ~collect_bbv:true ~n_blocks () in
  let key_counts = Marker.Table.create 256 in
  let boundaries_rev = ref [] in
  let obs =
    { Executor.on_block = (fun id insts -> acc_block acc id insts);
      on_access = (fun _ _ -> ());
      on_marker =
        (fun key ->
          if mappable key then begin
            let count =
              match Marker.Table.find_opt key_counts key with
              | Some r ->
                incr r;
                !r
              | None ->
                Marker.Table.add key_counts key (ref 1);
                1
            in
            if acc.cur_insts >= target then begin
              boundaries_rev := { bd_key = key; bd_count = count } :: !boundaries_rev;
              acc_cut acc
            end
          end) }
  in
  let read () =
    (acc_finalize acc, Array.of_list (List.rev !boundaries_rev))
  in
  (obs, read)

let vli_follower ?n_blocks ~boundaries ?cycles ?extras () =
  let collect_bbv, n_blocks =
    match n_blocks with Some n -> (true, n) | None -> (false, 0)
  in
  let acc = make_acc ?cycles ?extras ~collect_bbv ~n_blocks () in
  let key_counts = Marker.Table.create 256 in
  let next = ref 0 in
  let total = Array.length boundaries in
  let obs =
    { Executor.on_block = (fun id insts -> acc_block acc id insts);
      on_access = (fun _ _ -> ());
      on_marker =
        (fun key ->
          if !next < total then begin
            let count =
              match Marker.Table.find_opt key_counts key with
              | Some r ->
                incr r;
                !r
              | None ->
                Marker.Table.add key_counts key (ref 1);
                1
            in
            let b = boundaries.(!next) in
            if Marker.equal b.bd_key key && b.bd_count = count then begin
              incr next;
              acc_cut acc
            end
          end) }
  in
  let read () =
    if !next < total then
      invalid_arg
        (Printf.sprintf
           "Interval.vli_follower: only %d of %d boundaries reached — \
            boundaries do not belong to this (program, input)"
           !next total);
    acc_finalize acc
  in
  (obs, read)
