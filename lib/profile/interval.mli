(** Interval construction: slicing one execution into contiguous,
    non-overlapping intervals and collecting a basic block vector and
    performance counters for each.

    Three builders:

    - {!fli_observer}: fixed-length intervals — cut before the first block
      once the target instruction count is reached (SimPoint's classic
      FLI, Section 2.1);
    - {!vli_recorder}: variable-length intervals on the *primary* binary —
      cut at the first mappable marker after the target, and record the
      boundary as a (marker, global execution count) pair (Section 3.2.3);
    - {!vli_follower}: replay recorded boundaries in *another* binary —
      cut exactly when each boundary's marker reaches its recorded count
      (Section 3.2.5).

    Cut placement convention: a cut always falls between events, before
    the block (or at the marker) that triggers it, so a block's
    instructions, accesses and cycles land in the same interval.  The
    trailing partial interval is always kept, even when empty, so that a
    run with B boundaries has exactly B+1 intervals in *every* binary
    (consumers must tolerate a zero-instruction trailing interval).

    All builders accept an optional [cycles] thunk (typically reading a
    cache simulator running in the same pass) sampled at each cut, so each
    interval knows its simulated cycle count. *)

type interval = {
  insts : int;        (** Instructions in this interval. *)
  cycles : float;     (** Simulated cycles (0 when no [cycles] thunk). *)
  extras : float array;
      (** Additional per-interval counters sampled at each cut (deltas of
          the [extras] thunk), e.g. per-level cache misses; [[||]] when no
          thunk was given. *)
  bbv : float array;  (** Basic block vector, instruction-weighted;
                          [[||]] when BBV collection is off. *)
}

type boundary = {
  bd_key : Cbsp_compiler.Marker.key;
  bd_count : int;
      (** The cut lies immediately after the [bd_count]-th execution
          (1-based, counted from the start of the run) of [bd_key]. *)
}

val cpi : interval -> float
(** [cycles / insts].  @raise Invalid_argument on an empty interval. *)

val fli_observer :
  n_blocks:int ->
  target:int ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> interval array)
(** [n_blocks] sizes the BBVs; [target] is the interval length in
    instructions.  The reader finalizes the trailing interval and may be
    called once (subsequent calls return the same array). *)

val vli_recorder :
  n_blocks:int ->
  target:int ->
  mappable:(Cbsp_compiler.Marker.key -> bool) ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> interval array * boundary array)
(** Cuts only at markers satisfying [mappable].  Returns exactly one more
    interval than boundaries. *)

val vli_follower :
  ?n_blocks:int ->
  boundaries:boundary array ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> interval array)
(** Replays [boundaries] in order.  BBV collection happens only when
    [n_blocks] is given (followers normally skip it: only the primary's
    BBVs are clustered).  The reader raises [Invalid_argument] (with the
    reached/expected boundary counts) if the run ended before every
    boundary was met — boundaries from a different program or input. *)
