(** Interval construction: slicing one execution into contiguous,
    non-overlapping intervals and collecting a basic block vector and
    performance counters for each.

    Three builders:

    - {!fli_observer}: fixed-length intervals — cut before the first block
      once the target instruction count is reached (SimPoint's classic
      FLI, Section 2.1);
    - {!vli_recorder}: variable-length intervals on the *primary* binary —
      cut at the first mappable marker after the target, and record the
      boundary as a (marker, global execution count) pair (Section 3.2.3);
    - {!vli_follower}: replay recorded boundaries in *another* binary —
      cut exactly when each boundary's marker reaches its recorded count
      (Section 3.2.5).

    Cut placement convention: a cut always falls between events, before
    the block (or at the marker) that triggers it, so a block's
    instructions, accesses and cycles land in the same interval.  The
    trailing partial interval is always kept, even when empty, so that a
    run with B boundaries has exactly B+1 intervals in *every* binary
    (consumers must tolerate a zero-instruction trailing interval).

    All builders accept an optional [cycles] thunk (typically reading a
    cache simulator running in the same pass) sampled at each cut, so each
    interval knows its simulated cycle count.

    Each builder comes in two forms.  The {e streaming} form
    ({!fli_stream}, {!vli_recorder_stream}, {!vli_follower_stream}) emits
    every completed interval through an [emit] callback as soon as it is
    cut; the emitted interval's [bbv] and [extras] arrays alias a single
    pre-allocated scratch buffer that is zeroed and reused for the next
    interval, so a whole run costs O(1 interval) of profile memory and a
    consumer that retains an interval must copy those arrays.  The
    {e materializing} form ({!fli_observer}, {!vli_recorder},
    {!vli_follower}) is a thin wrapper that copies each emitted interval
    and returns the full array — same floats, bit for bit, as the
    streaming emissions (the scratch reuse performs the identical fills
    and increments a fresh allocation would).

    Peak scratch usage is tracked in the [profile.scratch_intervals]
    gauge: the largest number of full-width (n_blocks-long) BBV buffers
    any single pass held at once.  Streaming passes report 1; a
    materializing pass over n intervals reports n + 1 — which is how the
    suite-smoke CI budget catches accidental materialization. *)

type interval = {
  insts : int;        (** Instructions in this interval. *)
  cycles : float;     (** Simulated cycles (0 when no [cycles] thunk). *)
  extras : float array;
      (** Additional per-interval counters sampled at each cut (deltas of
          the [extras] thunk), e.g. per-level cache misses; [[||]] when no
          thunk was given. *)
  bbv : float array;  (** Basic block vector, instruction-weighted;
                          [[||]] when BBV collection is off. *)
}

type boundary = {
  bd_key : Cbsp_compiler.Marker.key;
  bd_count : int;
      (** The cut lies immediately after the [bd_count]-th execution
          (1-based, counted from the start of the run) of [bd_key]. *)
}

val cpi : interval -> float
(** [cycles / insts].  @raise Invalid_argument on an empty interval. *)

type emit = interval -> unit
(** Streaming consumer.  The interval argument is only valid for the
    duration of the call: its [bbv] and [extras] alias scratch buffers
    overwritten at the next cut.  Copy anything you keep. *)

val note_scratch_peak : int -> unit
(** Raise the [profile.scratch_intervals] gauge to [n] if it is below —
    for consumers (e.g. the streaming cluster collector) that hold
    full-width BBV scratch of their own beyond what the builders here
    account for. *)

(** {1 Streaming builders} *)

val fli_stream :
  n_blocks:int ->
  target:int ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  emit:emit ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> int)
(** Streaming fixed-length intervals.  The finisher emits the trailing
    interval (idempotently) and returns the total interval count.
    @raise Invalid_argument if [target <= 0]. *)

val vli_recorder_stream :
  n_blocks:int ->
  target:int ->
  mappable:(Cbsp_compiler.Marker.key -> bool) ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  emit:emit ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> int * boundary array)
(** Streaming VLI recorder.  The finisher returns (interval count,
    boundaries); the count is always [Array.length boundaries + 1]. *)

val vli_follower_stream :
  ?n_blocks:int ->
  boundaries:boundary array ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  emit:emit ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> int)
(** Streaming boundary replay.  The finisher raises [Invalid_argument]
    (with the reached/expected boundary counts) if the run ended before
    every boundary was met. *)

(** {1 Materializing builders} *)

val fli_observer :
  n_blocks:int ->
  target:int ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> interval array)
(** [n_blocks] sizes the BBVs; [target] is the interval length in
    instructions.  The reader finalizes the trailing interval and may be
    called once (subsequent calls return the same array). *)

val vli_recorder :
  n_blocks:int ->
  target:int ->
  mappable:(Cbsp_compiler.Marker.key -> bool) ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> interval array * boundary array)
(** Cuts only at markers satisfying [mappable].  Returns exactly one more
    interval than boundaries. *)

val vli_follower :
  ?n_blocks:int ->
  boundaries:boundary array ->
  ?cycles:(unit -> float) ->
  ?extras:(unit -> float array) ->
  unit ->
  Cbsp_exec.Executor.observer * (unit -> interval array)
(** Replays [boundaries] in order.  BBV collection happens only when
    [n_blocks] is given (followers normally skip it: only the primary's
    BBVs are clustered).  The reader raises [Invalid_argument] (with the
    reached/expected boundary counts) if the run ended before every
    boundary was met — boundaries from a different program or input. *)
