module Metrics = Cbsp_obs.Metrics
module Tracer = Cbsp_obs.Tracer

let magic = "cbsp-ivl/1\n"
let record_tag = '\x01'
let trailer_tag = '\x00'

let m_bytes_written = lazy (Metrics.counter "ivl.bytes_written")
let m_bytes_read = lazy (Metrics.counter "ivl.bytes_read")
let m_ratio = lazy (Metrics.histogram "ivl.compression_ratio")

let fail fmt = Printf.ksprintf invalid_arg ("Ivl_file: " ^^ fmt)

(* --- adler32 ----------------------------------------------------------- *)

(* Incremental Adler-32 (RFC 1950): cheap, order-sensitive, and plenty to
   catch truncation and bit rot in an artifact store.  State fits in two
   ints; [adler_feed] may be called per record. *)
let adler_init = (1, 0)

let adler_feed (a, b) s pos len =
  let a = ref a and b = ref b in
  for i = pos to pos + len - 1 do
    a := (!a + Char.code (String.unsafe_get s i)) mod 65521;
    b := (!b + !a) mod 65521
  done;
  (!a, !b)

let adler_value (a, b) = (b lsl 16) lor a

(* --- primitive writers ------------------------------------------------- *)

let put_varint buf n =
  if n < 0 then fail "cannot varint-encode negative %d" n;
  let n = ref n in
  while !n >= 0x80 do
    Buffer.add_char buf (Char.chr (0x80 lor (!n land 0x7f)));
    n := !n lsr 7
  done;
  Buffer.add_char buf (Char.chr !n)

let put_varint64 buf v =
  let v = ref v in
  while Int64.unsigned_compare !v 0x80L >= 0 do
    Buffer.add_char buf
      (Char.chr (0x80 lor Int64.(to_int (logand !v 0x7fL))));
    v := Int64.shift_right_logical !v 7
  done;
  Buffer.add_char buf (Char.chr (Int64.to_int !v))

let put_u32 buf v =
  for shift = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (shift * 8)) land 0xff))
  done

(* Floats in a profile are overwhelmingly small non-negative integers
   (block counts, cycle deltas), so integral values encode as varint
   [2n] (even); everything else — denormals, non-integral, negative,
   including -0.0, whose sign bit [Float.is_integer] would silently
   drop — escapes to [1] followed by the raw IEEE-754 bits.  Odd values
   other than 1 are reserved. *)
let max_integral = 0x1000_0000_0000_0000 (* 2^60: 2n must stay a valid int *)

let put_float buf f =
  let bits = Int64.bits_of_float f in
  if
    bits >= 0L (* positive sign bit: keeps -0.0 out of the integral path *)
    && Float.is_integer f
    && f < float_of_int max_integral
  then put_varint buf (2 * int_of_float f)
  else begin
    put_varint buf 1;
    put_varint64 buf bits
  end

(* --- primitive readers ------------------------------------------------- *)

type cursor = { data : string; mutable pos : int }

let get_byte cur =
  if cur.pos >= String.length cur.data then fail "truncated input";
  let c = Char.code (String.unsafe_get cur.data cur.pos) in
  cur.pos <- cur.pos + 1;
  c

let get_varint cur =
  let n = ref 0 and shift = ref 0 in
  let continue = ref true in
  while !continue do
    let b = get_byte cur in
    if !shift > 56 then fail "varint overflow";
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !n

let get_varint64 cur =
  let n = ref 0L and shift = ref 0 in
  let continue = ref true in
  while !continue do
    let b = get_byte cur in
    if !shift > 63 then fail "varint overflow";
    n := Int64.(logor !n (shift_left (of_int (b land 0x7f)) !shift));
    shift := !shift + 7;
    continue := b land 0x80 <> 0
  done;
  !n

let get_u32 cur =
  let v = ref 0 in
  for shift = 0 to 3 do
    v := !v lor (get_byte cur lsl (shift * 8))
  done;
  !v

let get_float cur =
  let v = get_varint cur in
  if v land 1 = 0 then float_of_int (v lsr 1)
  else if v = 1 then Int64.float_of_bits (get_varint64 cur)
  else fail "reserved float escape %d" v

(* --- record encode ----------------------------------------------------- *)

let put_record buf ~n_blocks ~n_extras (iv : Interval.interval) =
  if Array.length iv.Interval.bbv <> n_blocks then
    fail "interval BBV has %d blocks, header declares %d"
      (Array.length iv.Interval.bbv) n_blocks;
  if Array.length iv.Interval.extras <> n_extras then
    fail "interval has %d extras, header declares %d"
      (Array.length iv.Interval.extras) n_extras;
  Buffer.add_char buf record_tag;
  put_varint buf iv.Interval.insts;
  put_float buf iv.Interval.cycles;
  Array.iter (put_float buf) iv.Interval.extras;
  (* Only +0.0 (bits all zero) counts as absent: [x <> 0.0] would also
     drop -0.0, and the format promises bit-exact round-trips. *)
  let present x = Int64.bits_of_float x <> 0L in
  let nnz = ref 0 in
  Array.iter (fun x -> if present x then incr nnz) iv.Interval.bbv;
  put_varint buf !nnz;
  let prev = ref 0 in
  Array.iteri
    (fun i x ->
      if present x then begin
        (* First index absolute, then gaps — short varints for the
           clustered block ids a loop nest produces. *)
        put_varint buf (i - !prev);
        prev := i;
        put_float buf x
      end)
    iv.Interval.bbv

(* Dense float64 size of the same record: what a naive binary dump would
   cost.  Feeds the compression-ratio histogram. *)
let dense_bytes ~n_blocks ~n_extras = 8 * (2 + n_extras + n_blocks)

(* --- streaming writer -------------------------------------------------- *)

type writer = {
  oc : out_channel;
  w_path : string;
  w_n_blocks : int;
  w_n_extras : int;
  w_buf : Buffer.t;
  mutable w_adler : int * int;
  mutable w_records : int;
  mutable w_bytes : int;
  mutable w_closed : bool;
}

let header_string ~n_blocks ~n_extras =
  let buf = Buffer.create 32 in
  Buffer.add_string buf magic;
  let hdr = Buffer.create 8 in
  put_varint hdr n_blocks;
  put_varint hdr n_extras;
  put_varint hdr 0 (* flags, reserved *);
  let h = Buffer.contents hdr in
  Buffer.add_string buf h;
  put_u32 buf (adler_value (adler_feed adler_init h 0 (String.length h)));
  Buffer.contents buf

let writer ~path ~n_blocks ~n_extras =
  if n_blocks < 0 || n_extras < 0 then fail "negative dimensions";
  let oc = open_out_bin path in
  let header = header_string ~n_blocks ~n_extras in
  output_string oc header;
  { oc; w_path = path; w_n_blocks = n_blocks; w_n_extras = n_extras;
    w_buf = Buffer.create 4096; w_adler = adler_init; w_records = 0;
    w_bytes = String.length header; w_closed = false }

let write w iv =
  if w.w_closed then fail "write to closed writer (%s)" w.w_path;
  Buffer.clear w.w_buf;
  put_record w.w_buf ~n_blocks:w.w_n_blocks ~n_extras:w.w_n_extras iv;
  let s = Buffer.contents w.w_buf in
  w.w_adler <- adler_feed w.w_adler s 0 (String.length s);
  output_string w.oc s;
  w.w_records <- w.w_records + 1;
  w.w_bytes <- w.w_bytes + String.length s

let close w =
  if not w.w_closed then begin
    w.w_closed <- true;
    Fun.protect
      ~finally:(fun () -> close_out w.oc)
      (fun () ->
        let buf = Buffer.create 16 in
        Buffer.add_char buf trailer_tag;
        put_varint buf w.w_records;
        put_u32 buf (adler_value w.w_adler);
        output_string w.oc (Buffer.contents buf);
        w.w_bytes <- w.w_bytes + Buffer.length buf);
    Metrics.incr ~by:w.w_bytes (Lazy.force m_bytes_written);
    if w.w_bytes > 0 && w.w_records > 0 then
      Metrics.observe (Lazy.force m_ratio)
        (float_of_int
           (w.w_records * dense_bytes ~n_blocks:w.w_n_blocks ~n_extras:w.w_n_extras)
        /. float_of_int w.w_bytes)
  end

let written_bytes w = w.w_bytes

(* --- in-memory encode -------------------------------------------------- *)

let encode ~n_blocks intervals =
  Tracer.with_span ~name:"ivl.encode" ~cat:"profile" @@ fun () ->
  let n_extras =
    if Array.length intervals = 0 then 0
    else Array.length intervals.(0).Interval.extras
  in
  let buf = Buffer.create 65536 in
  Buffer.add_string buf (header_string ~n_blocks ~n_extras);
  let payload = Buffer.create 65536 in
  Array.iter (put_record payload ~n_blocks ~n_extras) intervals;
  let p = Buffer.contents payload in
  Buffer.add_string buf p;
  Buffer.add_char buf trailer_tag;
  put_varint buf (Array.length intervals);
  put_u32 buf (adler_value (adler_feed adler_init p 0 (String.length p)));
  let s = Buffer.contents buf in
  Metrics.incr ~by:(String.length s) (Lazy.force m_bytes_written);
  if Array.length intervals > 0 then
    Metrics.observe (Lazy.force m_ratio)
      (float_of_int (Array.length intervals * dense_bytes ~n_blocks ~n_extras)
      /. float_of_int (String.length s));
  s

(* --- decode ------------------------------------------------------------ *)

let check_magic cur =
  let n = String.length magic in
  (* An input shorter than the magic is a truncation, not a foreign
     file — the distinction matters when a partial download is read. *)
  if String.length cur.data < n then fail "truncated input";
  if not (String.equal (String.sub cur.data 0 n) magic) then
    fail "bad magic — not a cbsp-ivl/1 file";
  cur.pos <- n

let read_header cur =
  check_magic cur;
  let hdr_start = cur.pos in
  let n_blocks = get_varint cur in
  let n_extras = get_varint cur in
  let flags = get_varint cur in
  if flags <> 0 then fail "unsupported flags %d" flags;
  let computed =
    adler_value (adler_feed adler_init cur.data hdr_start (cur.pos - hdr_start))
  in
  let stored = get_u32 cur in
  if computed <> stored then
    fail "header checksum mismatch (stored %08x, computed %08x)" stored computed;
  (n_blocks, n_extras)

(* Stream the records of an encoded profile through [f].  The interval
   passed to [f] aliases a single scratch BBV/extras pair reused across
   records — same contract as [Interval.emit]: copy to retain. *)
let decode_fold data ~init ~f =
  Tracer.with_span ~name:"ivl.decode" ~cat:"profile" @@ fun () ->
  let cur = { data; pos = 0 } in
  let n_blocks, n_extras = read_header cur in
  let bbv = Array.make n_blocks 0.0 in
  let extras = Array.make n_extras 0.0 in
  Interval.note_scratch_peak 1;
  let payload_start = cur.pos in
  let acc = ref init in
  let records = ref 0 in
  let continue = ref true in
  while !continue do
    match Char.chr (get_byte cur) with
    | c when c = record_tag ->
      let insts = get_varint cur in
      let cycles = get_float cur in
      for i = 0 to n_extras - 1 do
        extras.(i) <- get_float cur
      done;
      Array.fill bbv 0 n_blocks 0.0;
      let nnz = get_varint cur in
      let idx = ref 0 in
      for _ = 1 to nnz do
        idx := !idx + get_varint cur;
        if !idx >= n_blocks then
          fail "block id %d out of range (n_blocks=%d)" !idx n_blocks;
        bbv.(!idx) <- get_float cur
      done;
      incr records;
      acc := f !acc { Interval.insts; cycles; extras; bbv }
    | c when c = trailer_tag ->
      let payload_len = cur.pos - 1 - payload_start in
      let stored_count = get_varint cur in
      if stored_count <> !records then
        fail "record count mismatch (trailer says %d, read %d)" stored_count
          !records;
      let computed =
        adler_value (adler_feed adler_init data payload_start payload_len)
      in
      let stored = get_u32 cur in
      if computed <> stored then
        fail "payload checksum mismatch (stored %08x, computed %08x)" stored
          computed;
      continue := false
    | c -> fail "unknown record tag %#x" (Char.code c)
  done;
  Metrics.incr ~by:(String.length data) (Lazy.force m_bytes_read);
  !acc

let decode data =
  let rev =
    decode_fold data ~init:[] ~f:(fun acc iv ->
        { iv with
          Interval.bbv = Array.copy iv.Interval.bbv;
          extras = Array.copy iv.Interval.extras }
        :: acc)
  in
  Array.of_list (List.rev rev)

(* --- files ------------------------------------------------------------- *)

let save ~path ~n_blocks intervals =
  Cbsp_util.Io.with_out_file path (fun oc ->
      output_string oc (encode ~n_blocks intervals))

let read_fold ~path ~init ~f = decode_fold (Cbsp_util.Io.read_file path) ~init ~f

let load ~path = decode (Cbsp_util.Io.read_file path)
