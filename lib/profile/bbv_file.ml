exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let to_string intervals =
  let buf = Buffer.create 65536 in
  Array.iter
    (fun (iv : Interval.interval) ->
      if Array.length iv.Interval.bbv = 0 && iv.Interval.insts > 0 then
        invalid_arg "Bbv_file.to_string: interval has no BBV";
      Buffer.add_char buf 'T';
      Array.iteri
        (fun id count ->
          if count > 0.0 then
            Printf.ksprintf (Buffer.add_string buf) ":%d:%.0f " (id + 1) count)
        iv.Interval.bbv;
      Buffer.add_char buf '\n')
    intervals;
  Buffer.contents buf

let parse_pair lineno word =
  (* word looks like ":id:count" *)
  match String.split_on_char ':' word with
  | [ ""; id; count ] -> begin
    match (int_of_string_opt id, float_of_string_opt count) with
    | Some id, Some count when id >= 1 && count >= 0.0 -> (id, count)
    | _ -> fail "line %d: bad pair %S" lineno word
  end
  | _ -> fail "line %d: bad pair %S" lineno word

let of_string ?n_blocks text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  let parsed =
    List.map
      (fun (lineno, line) ->
        if line.[0] <> 'T' then fail "line %d: expected 'T' prefix" lineno;
        let rest = String.sub line 1 (String.length line - 1) in
        let words =
          String.split_on_char ' ' rest |> List.filter (fun w -> w <> "")
        in
        (lineno, List.map (parse_pair lineno) words))
      lines
  in
  let max_id =
    List.fold_left
      (fun acc (_, pairs) ->
        List.fold_left (fun acc (id, _) -> max acc id) acc pairs)
      0 parsed
  in
  let dim =
    match n_blocks with
    | None -> max_id
    | Some n ->
      if max_id > n then
        fail "block id %d exceeds declared dimensionality %d" max_id n;
      n
  in
  List.map
    (fun (_, pairs) ->
      let v = Array.make dim 0.0 in
      List.iter (fun (id, count) -> v.(id - 1) <- v.(id - 1) +. count) pairs;
      v)
    parsed
  |> Array.of_list

let save ~path intervals =
  Cbsp_util.Io.with_out_file path (fun oc ->
      output_string oc (to_string intervals))

let load ?n_blocks ~path () =
  of_string ?n_blocks (Cbsp_util.Io.read_file path)
