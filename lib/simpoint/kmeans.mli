(** Weighted k-means (SimPoint step 3).

    SimPoint 3.0's variable-length-interval support weights every vector
    by the instructions its interval executed, so long intervals pull
    centroids harder and cluster sizes are measured in instructions, not
    interval counts.  Fixed-length intervals are the uniform-weight
    special case.

    Seeding is weighted k-means++ (D² sampling); Lloyd iterations follow
    until assignments stabilize or [max_iters] is hit.  Clusters that
    empty out are reseeded on the point farthest from its centroid, so the
    result always has exactly the k requested — unless there are fewer
    distinct points than k, in which case duplicate centroids are
    harmless.

    {!run} prunes the assignment step with Hamerly-style triangle-
    inequality bounds (per-point upper/lower distance bounds, invalidated
    by centroid drift) and can run assignment, accumulation, and
    distortion domain-parallel.  Point-order floating-point reductions
    follow one canonical fixed-chunk order regardless of [jobs], so the
    result is bit-identical to {!run_reference} — the plain Lloyd
    implementation kept as the semantic reference — for every [jobs]
    (the test suite proves this on random weighted point sets). *)

type result = {
  k : int;
  assignments : int array;        (** Point index -> cluster in [0,k). *)
  centroids : float array array;  (** [k] centroids. *)
  distortion : float;             (** Weighted sum of squared distances
                                      to assigned centroids. *)
  iterations : int;               (** Lloyd iterations of the best run. *)
}

val run :
  ?seed:int ->
  ?restarts:int ->
  ?max_iters:int ->
  ?jobs:int ->
  k:int ->
  weights:float array ->
  points:float array array ->
  unit ->
  result
(** Best-of-[restarts] (default 5) by distortion, with Hamerly-pruned
    assignment.  [jobs] (default 1) is the worker-domain cap for the
    per-chunk parallel phases; any value returns bit-identical results.
    All weights must be > 0 and [1 <= k <= Array.length points].
    @raise Invalid_argument on bad arguments. *)

val run_minibatch :
  ?seed:int ->
  ?restarts:int ->
  ?batch_size:int ->
  ?max_iters:int ->
  k:int ->
  weights:float array ->
  points:float array array ->
  unit ->
  result
(** Mini-batch k-means (Sculley): k-means++ seeding as in {!run}, then
    [max_iters] (default 100) online updates from contiguous batches of
    [batch_size] (default 256) points cycled in order — each batch
    member pulls its nearest centroid by [w / W_c], the learning rate
    that makes the centroid the running weighted mean of everything ever
    assigned to it.  O(batch · k) per step and O(k · dim) state, for
    clustering profiles too long for full Lloyd sweeps.  Deterministic
    for a given seed, but NOT bit-identical to {!run}; [iterations]
    reports batch steps.  Final assignments and distortion come from one
    exact full pass over the points.
    @raise Invalid_argument on bad arguments or [batch_size < 1]. *)

val run_reference :
  ?seed:int ->
  ?restarts:int ->
  ?max_iters:int ->
  k:int ->
  weights:float array ->
  points:float array array ->
  unit ->
  result
(** Plain sequential Lloyd over full distance scans — the reference
    {!run} is tested against.  Same seeding, same canonical reduction
    order, no pruning, no parallelism. *)

val cluster_weights : result -> weights:float array -> float array
(** Total weight per cluster; sums to the total input weight. *)

val closest_to_centroid : result -> points:float array array -> int array
(** Per cluster, the index of the member point nearest its centroid —
    SimPoint's representative choice.  Entry is [-1] for an empty cluster
    (possible only when there were duplicate centroids). *)
