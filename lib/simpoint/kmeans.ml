module Rng = Cbsp_util.Rng
module Stats = Cbsp_util.Stats
module Scheduler = Cbsp_engine.Scheduler
module Metrics = Cbsp_obs.Metrics

(* Clustering observability: restarts executed, Lloyd iterations, and
   exact distance evaluations the pruned assignment actually paid for
   (the whole point of the Hamerly bounds is to keep the last one far
   below n*k per iteration). *)
let m_runs = lazy (Metrics.counter "kmeans.runs")
let m_iterations = lazy (Metrics.counter "kmeans.iterations")
let m_distance_evals = lazy (Metrics.counter "kmeans.distance_evals")

type result = {
  k : int;
  assignments : int array;
  centroids : float array array;
  distortion : float;
  iterations : int;
}

let check_args ~k ~weights ~points =
  let n = Array.length points in
  if n = 0 then invalid_arg "Kmeans.run: no points";
  if Array.length weights <> n then invalid_arg "Kmeans.run: weights/points length mismatch";
  Array.iter (fun w -> if w <= 0.0 then invalid_arg "Kmeans.run: non-positive weight") weights;
  if k < 1 || k > n then invalid_arg "Kmeans.run: k out of range";
  let dim = Array.length points.(0) in
  Array.iter
    (fun p -> if Array.length p <> dim then invalid_arg "Kmeans.run: ragged points")
    points

(* Points are processed in fixed chunks: the chunk grid depends only on n,
   never on the worker count, and partial results are folded in ascending
   chunk order.  That fixes one canonical floating-point summation order,
   so every [jobs] value — and the sequential reference — produces
   bit-identical centroids and distortion. *)
let chunk_size = 256

let chunk_bounds n =
  List.init ((n + chunk_size - 1) / chunk_size) (fun c ->
      (c * chunk_size, min n ((c + 1) * chunk_size)))

(* Weighted k-means++: first centre weight-proportional, subsequent centres
   proportional to weight * D²(point, nearest chosen centre).  One scratch
   [masses] buffer is reused across centres (the per-centre [Array.init]
   made seeding O(n·k) in allocation). *)
let seed_plus_plus rng ~k ~weights ~points =
  let n = Array.length points in
  let centroids = Array.make k [||] in
  let d2 = Array.make n infinity in
  let masses = Array.make n 0.0 in
  let pick_weighted masses =
    let total = Stats.sum masses in
    if total <= 0.0 then Rng.int rng ~bound:n
    else begin
      let target = Rng.float rng *. total in
      let rec scan i acc =
        if i >= n - 1 then n - 1
        else begin
          let acc = acc +. masses.(i) in
          if acc > target then i else scan (i + 1) acc
        end
      in
      scan 0 0.0
    end
  in
  let first = pick_weighted weights in
  centroids.(0) <- Array.copy points.(first);
  for c = 1 to k - 1 do
    for i = 0 to n - 1 do
      let d = Stats.sq_distance points.(i) centroids.(c - 1) in
      if d < d2.(i) then d2.(i) <- d;
      masses.(i) <- weights.(i) *. d2.(i)
    done;
    let next = pick_weighted masses in
    centroids.(c) <- Array.copy points.(next)
  done;
  centroids

(* Nearest and second-nearest centroid of one point, with the reference
   tie-break (strict improvement, so the lowest index wins ties). *)
let nearest_two ~centroids ~k p =
  let best = ref 0 in
  let best_d = ref (Stats.sq_distance p centroids.(0)) in
  let second_d = ref infinity in
  for c = 1 to k - 1 do
    let d = Stats.sq_distance p centroids.(c) in
    if d < !best_d then begin
      second_d := !best_d;
      best_d := d;
      best := c
    end
    else if d < !second_d then second_d := d
  done;
  (!best, !best_d, !second_d)

let assign_all ~centroids ~points ~assignments =
  let k = Array.length centroids in
  let changed = ref false in
  Array.iteri
    (fun i p ->
      let best, _, _ = nearest_two ~centroids ~k p in
      if assignments.(i) <> best then begin
        assignments.(i) <- best;
        changed := true
      end)
    points;
  !changed

(* --- centroid accumulation (canonical chunked order) ------------------- *)

let accumulate_chunk ~weights ~points ~assignments ~k ~dim (lo, hi) =
  let sums = Array.init k (fun _ -> Array.make dim 0.0) in
  let mass = Array.make k 0.0 in
  for i = lo to hi - 1 do
    let c = assignments.(i) in
    let w = weights.(i) in
    mass.(c) <- mass.(c) +. w;
    let p = points.(i) in
    let s = sums.(c) in
    for j = 0 to dim - 1 do
      s.(j) <- s.(j) +. (w *. p.(j))
    done
  done;
  (sums, mass)

let accumulate ~jobs ~weights ~points ~assignments ~k =
  let n = Array.length points in
  let dim = Array.length points.(0) in
  let partials =
    Scheduler.parallel_map ~jobs
      (accumulate_chunk ~weights ~points ~assignments ~k ~dim)
      (chunk_bounds n)
  in
  let sums = Array.init k (fun _ -> Array.make dim 0.0) in
  let mass = Array.make k 0.0 in
  List.iter
    (fun (psums, pmass) ->
      for c = 0 to k - 1 do
        mass.(c) <- mass.(c) +. pmass.(c);
        let s = sums.(c) in
        let p = psums.(c) in
        for j = 0 to dim - 1 do
          s.(j) <- s.(j) +. p.(j)
        done
      done)
    partials;
  (sums, mass)

let recompute_centroids ~jobs ~weights ~points ~assignments ~centroids =
  let k = Array.length centroids in
  let dim = Array.length points.(0) in
  let sums, mass = accumulate ~jobs ~weights ~points ~assignments ~k in
  (* Reseed empty clusters on the point with the largest weighted distance
     to its current centroid.  Sequential on purpose: the scan reads
     centroids mid-update, so its order is part of the reference
     semantics. *)
  for c = 0 to k - 1 do
    if mass.(c) = 0.0 then begin
      let worst = ref 0 and worst_d = ref neg_infinity in
      Array.iteri
        (fun i p ->
          let d = weights.(i) *. Stats.sq_distance p centroids.(assignments.(i)) in
          if d > !worst_d then begin
            worst_d := d;
            worst := i
          end)
        points;
      centroids.(c) <- Array.copy points.(!worst)
    end
    else begin
      let s = sums.(c) in
      for j = 0 to dim - 1 do
        s.(j) <- s.(j) /. mass.(c)
      done;
      centroids.(c) <- s
    end
  done

let distortion_chunk ~weights ~points ~assignments ~centroids (lo, hi) =
  let acc = ref 0.0 in
  for i = lo to hi - 1 do
    acc :=
      !acc +. (weights.(i) *. Stats.sq_distance points.(i) centroids.(assignments.(i)))
  done;
  !acc

let total_distortion ~jobs ~weights ~points ~assignments ~centroids =
  let parts =
    Scheduler.parallel_map ~jobs
      (distortion_chunk ~weights ~points ~assignments ~centroids)
      (chunk_bounds (Array.length points))
  in
  List.fold_left ( +. ) 0.0 parts

(* --- reference Lloyd ---------------------------------------------------- *)

let run_once_reference rng ~max_iters ~k ~weights ~points =
  let n = Array.length points in
  let centroids = seed_plus_plus rng ~k ~weights ~points in
  let assignments = Array.make n (-1) in
  let iterations = ref 0 in
  let continue = ref true in
  while !continue && !iterations < max_iters do
    let changed = assign_all ~centroids ~points ~assignments in
    if changed then begin
      recompute_centroids ~jobs:1 ~weights ~points ~assignments ~centroids;
      incr iterations
    end
    else continue := false
  done;
  (* Ensure assignments reflect the final centroids. *)
  let (_ : bool) = assign_all ~centroids ~points ~assignments in
  let distortion = total_distortion ~jobs:1 ~weights ~points ~assignments ~centroids in
  { k; assignments; centroids; distortion; iterations = !iterations }

(* --- pruned (Hamerly) Lloyd -------------------------------------------- *)

(* Per-point bounds in Euclidean (not squared) distance:

     upper.(i) >= d(points.(i), centroids.(assignments.(i)))
     lower.(i) <= d(points.(i), c)   for every c <> assignments.(i)

   After a full scan both are exact; a centroid move of [drift.(c)]
   loosens them by at most that much (triangle inequality).  A point is
   skipped only when [upper < lower] STRICTLY: then every rival centroid
   is strictly farther than the assigned one, so the reference full scan
   — ties and all — would reproduce the current assignment.  That strict
   comparison is what makes pruned assignments bit-identical to the
   reference, not merely approximately equal. *)

let assign_chunk_pruned ~centroids ~points ~assignments ~upper ~lower (lo, hi) =
  let k = Array.length centroids in
  let changed = ref false in
  let evals = ref 0 in
  for i = lo to hi - 1 do
    if not (upper.(i) < lower.(i)) then begin
      let p = points.(i) in
      let a = assignments.(i) in
      (* Tighten the upper bound with one exact distance first; most
         surviving points die here without a full scan. *)
      let d_a = sqrt (Stats.sq_distance p centroids.(a)) in
      incr evals;
      upper.(i) <- d_a;
      if not (d_a < lower.(i)) then begin
        let best, best_d, second_d = nearest_two ~centroids ~k p in
        evals := !evals + k;
        upper.(i) <- sqrt best_d;
        lower.(i) <- sqrt second_d;
        if a <> best then begin
          assignments.(i) <- best;
          changed := true
        end
      end
    end
  done;
  (!changed, !evals)

let assign_chunk_full ~centroids ~points ~assignments ~upper ~lower (lo, hi) =
  let k = Array.length centroids in
  let changed = ref false in
  for i = lo to hi - 1 do
    let best, best_d, second_d = nearest_two ~centroids ~k points.(i) in
    upper.(i) <- sqrt best_d;
    lower.(i) <- sqrt second_d;
    if assignments.(i) <> best then begin
      assignments.(i) <- best;
      changed := true
    end
  done;
  (!changed, (hi - lo) * k)

let run_once_pruned ~jobs rng ~max_iters ~k ~weights ~points =
  let n = Array.length points in
  let centroids = seed_plus_plus rng ~k ~weights ~points in
  let assignments = Array.make n (-1) in
  let upper = Array.make n infinity in
  let lower = Array.make n 0.0 in
  let chunks = chunk_bounds n in
  let assign chunk_fn =
    let flags =
      Scheduler.parallel_map ~jobs
        (chunk_fn ~centroids ~points ~assignments ~upper ~lower)
        chunks
    in
    let evals = List.fold_left (fun acc (_, e) -> acc + e) 0 flags in
    Metrics.incr ~by:evals (Lazy.force m_distance_evals);
    List.exists (fun (changed, _) -> changed) flags
  in
  let old = Array.init k (fun _ -> [||]) in
  let drift = Array.make k 0.0 in
  let recompute_and_loosen () =
    for c = 0 to k - 1 do
      old.(c) <- centroids.(c)
    done;
    recompute_centroids ~jobs ~weights ~points ~assignments ~centroids;
    let max_drift = ref 0.0 in
    for c = 0 to k - 1 do
      let d = sqrt (Stats.sq_distance old.(c) centroids.(c)) in
      drift.(c) <- d;
      if d > !max_drift then max_drift := d
    done;
    let md = !max_drift in
    if md > 0.0 then
      for i = 0 to n - 1 do
        upper.(i) <- upper.(i) +. drift.(assignments.(i));
        lower.(i) <- lower.(i) -. md
      done
  in
  let iterations = ref 0 in
  let continue = ref true in
  let first = ref true in
  while !continue && !iterations < max_iters do
    let changed =
      if !first then begin
        first := false;
        let (_ : bool) = assign assign_chunk_full in
        (* From the -1 state every point changes, like the reference. *)
        true
      end
      else assign assign_chunk_pruned
    in
    if changed then begin
      recompute_and_loosen ();
      incr iterations
    end
    else continue := false
  done;
  (* Ensure assignments reflect the final centroids (the bounds were
     loosened after the last recompute, so the pruned pass is exact). *)
  let (_ : bool) =
    if !first then assign assign_chunk_full else assign assign_chunk_pruned
  in
  let distortion = total_distortion ~jobs ~weights ~points ~assignments ~centroids in
  Metrics.incr (Lazy.force m_runs);
  Metrics.incr ~by:!iterations (Lazy.force m_iterations);
  { k; assignments; centroids; distortion; iterations = !iterations }

(* --- mini-batch (Sculley) ----------------------------------------------- *)

(* Web-scale k-means (Sculley, WWW 2010), weighted: centroids are seeded
   with k-means++ exactly like the batch modes, then updated online from
   fixed-size contiguous batches — for each batch member, the nearest
   centroid [c] takes a step of [w / W_c] toward the point, where [W_c]
   is the total weight ever assigned to [c].  Contiguous batches cycled
   in order (not sampled) keep the procedure deterministic for a given
   seed.  This trades the batch modes' exact Lloyd fixpoint for
   per-batch O(batch · k) work and O(k · dim) state, which is what lets
   clustering keep up with a streamed profile; it is NOT bit-identical
   to [run] — the full-batch mode remains the reference the qcheck
   properties compare against. *)
let run_once_minibatch rng ~batch_size ~max_iters ~k ~weights ~points =
  let n = Array.length points in
  let dim = Array.length points.(0) in
  let centroids = seed_plus_plus rng ~k ~weights ~points in
  (* seed_plus_plus aliases chosen points; updates below mutate. *)
  for c = 0 to k - 1 do
    centroids.(c) <- Array.copy centroids.(c)
  done;
  let opened_mass = Array.make k 0.0 in
  let n_batches = (n + batch_size - 1) / batch_size in
  let evals = ref 0 in
  for step = 0 to max_iters - 1 do
    let b = step mod n_batches in
    let lo = b * batch_size and hi = min n ((b + 1) * batch_size) in
    for i = lo to hi - 1 do
      let p = points.(i) in
      let best, _, _ = nearest_two ~centroids ~k p in
      evals := !evals + k;
      let w = weights.(i) in
      let mass = opened_mass.(best) +. w in
      opened_mass.(best) <- mass;
      let eta = w /. mass in
      let ctr = centroids.(best) in
      for j = 0 to dim - 1 do
        ctr.(j) <- ctr.(j) +. (eta *. (p.(j) -. ctr.(j)))
      done
    done
  done;
  Metrics.incr ~by:!evals (Lazy.force m_distance_evals);
  let assignments = Array.make n (-1) in
  let (_ : bool) = assign_all ~centroids ~points ~assignments in
  let distortion =
    total_distortion ~jobs:1 ~weights ~points ~assignments ~centroids
  in
  Metrics.incr (Lazy.force m_runs);
  Metrics.incr ~by:max_iters (Lazy.force m_iterations);
  { k; assignments; centroids; distortion; iterations = max_iters }

(* --- drivers ------------------------------------------------------------ *)

let run_restarts ~run_once ~seed ~restarts ~max_iters ~k ~weights ~points =
  check_args ~k ~weights ~points;
  if restarts < 1 then invalid_arg "Kmeans.run: restarts must be >= 1";
  let rng = Rng.create ~seed in
  let best = ref (run_once rng ~max_iters ~k ~weights ~points) in
  for _ = 2 to restarts do
    let candidate = run_once rng ~max_iters ~k ~weights ~points in
    if candidate.distortion < !best.distortion then best := candidate
  done;
  !best

let run ?(seed = 493) ?(restarts = 5) ?(max_iters = 100) ?(jobs = 1) ~k ~weights
    ~points () =
  run_restarts ~run_once:(run_once_pruned ~jobs) ~seed ~restarts ~max_iters ~k
    ~weights ~points

let run_reference ?(seed = 493) ?(restarts = 5) ?(max_iters = 100) ~k ~weights
    ~points () =
  run_restarts ~run_once:run_once_reference ~seed ~restarts ~max_iters ~k
    ~weights ~points

let run_minibatch ?(seed = 493) ?(restarts = 5) ?(batch_size = 256)
    ?(max_iters = 100) ~k ~weights ~points () =
  if batch_size < 1 then invalid_arg "Kmeans.run_minibatch: batch_size must be >= 1";
  run_restarts
    ~run_once:(run_once_minibatch ~batch_size)
    ~seed ~restarts ~max_iters ~k ~weights ~points

let cluster_weights result ~weights =
  let totals = Array.make result.k 0.0 in
  Array.iteri
    (fun i c -> totals.(c) <- totals.(c) +. weights.(i))
    result.assignments;
  totals

let closest_to_centroid result ~points =
  let best = Array.make result.k (-1) in
  let best_d = Array.make result.k infinity in
  Array.iteri
    (fun i p ->
      let c = result.assignments.(i) in
      let d = Stats.sq_distance p result.centroids.(c) in
      if d < best_d.(c) then begin
        best_d.(c) <- d;
        best.(c) <- i
      end)
    points;
  best
