(** The SimPoint 3.0 pipeline (paper Section 2.3): normalize BBVs, project
    to low dimension, cluster for k = 1..max_k, choose k by BIC, then pick
    one representative interval per phase with its weight.

    Works for fixed-length intervals (uniform weights) and variable-length
    intervals (weights = interval instruction counts) alike. *)

(** How the representative interval of each phase is chosen. *)
type rep_policy =
  | Centroid
      (** The member closest to the cluster centroid — SimPoint's
          default. *)
  | Early of float
      (** The {e earliest} member whose distance is within
          [(1 + tolerance)] of the best — "early simulation points"
          (Perelman et al., PACT 2003): near-equally representative but
          cheaper to fast-forward to. *)

(** How the space of k values is explored. *)
type k_search =
  | All_k  (** Cluster for every k in [1, max_k] (SimPoint default). *)
  | Binary_search
      (** Cluster k=1 and k=max_k to bracket the BIC range, then binary
          search for the smallest k above the threshold — SimPoint 3.0's
          faster search (assumes BIC is roughly monotone in k). *)

type config = {
  max_k : int;        (** Upper bound on phases (paper uses 10). *)
  dims : int;         (** Projected dimensionality (SimPoint uses 15). *)
  bic_fraction : float;  (** Threshold fraction of the BIC range (0.9). *)
  restarts : int;     (** k-means restarts per k. *)
  max_iters : int;    (** Lloyd iteration cap. *)
  seed : int;         (** Master seed for projection and seeding. *)
  rep_policy : rep_policy;
  k_search : k_search;
  jobs : int;  (** Worker-domain cap for projection and clustering; any
                   value gives bit-identical results (nested under an
                   already-parallel pipeline it degrades to sequential). *)
}

val default_config : config
(** max_k 10, dims 15, bic_fraction 0.9, restarts 5, max_iters 100,
    seed 2007, Centroid representatives, All_k search, jobs 1. *)

type sim_point = {
  phase : int;     (** Cluster id in [0, k). *)
  rep : int;       (** Index of the representative interval. *)
  weight : float;  (** Fraction of total weight in this phase. *)
}

type t = {
  k : int;
  phase_of : int array;        (** Interval index -> phase id. *)
  points : sim_point array;    (** One per phase, by phase id. *)
  bic_scores : (int * float) list;  (** (k, BIC) for every k tried
                                        (ascending k; a subset of
                                        [1, max_k] under
                                        {!Binary_search}). *)
}

val pick :
  ?config:config -> weights:float array -> bbvs:float array array -> unit -> t
(** [weights.(i)] is interval [i]'s instruction count (uniform for FLI);
    [bbvs.(i)] its basic block vector.  All weights must be > 0 and every
    BBV must have a positive sum (callers exclude empty intervals).
    @raise Invalid_argument otherwise. *)

val pick_projected :
  ?config:config -> weights:float array -> points:float array array -> unit -> t
(** Everything {!pick} does after projection: BIC-searched clustering
    over already-projected points.  The streaming profile path projects
    each interval as it is emitted (via {!projection_for} and
    {!Projection.project_into}) and feeds the retained points here —
    because normalization and projection are per-interval pure, the
    result is bit-identical to materializing the BBVs and calling
    {!pick}.  @raise Invalid_argument as {!pick}. *)

val projection_for : ?config:config -> in_dim:int -> unit -> Projection.t
(** The exact projection {!pick} would build for [in_dim]-long BBVs
    (seeded from [config.seed], output dimension [min config.dims
    in_dim]) — what a streaming collector must apply to match it. *)

val estimate : t -> metric_of_rep:(int -> float) -> float
(** The SimPoint extrapolation (step 6): the weighted average of a metric
    measured on each representative interval, e.g. CPI. *)
