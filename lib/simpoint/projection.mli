(** Random linear projection (SimPoint step 2).

    Basic block vectors have one dimension per static block — hundreds of
    dimensions — which makes k-means slow and distance concentration
    worse.  SimPoint projects to ~15 dimensions with a random matrix;
    by the Johnson-Lindenstrauss property, pairwise distances (all
    clustering ever looks at) are approximately preserved.

    The matrix is a flat row-major float64 [Bigarray] — one unboxed
    block, cache-friendly rows, no bounds checks on the hot path — but
    the draw order matches the historical array-of-rows fill, so a given
    seed produces the same matrix (and the same projected points) bit
    for bit as before the rewrite. *)

type t

val create : seed:int -> in_dim:int -> out_dim:int -> t
(** Entries drawn uniformly from [-1, 1], deterministically from [seed].
    @raise Invalid_argument unless [0 < out_dim] and [0 < in_dim]. *)

val in_dim : t -> int
val out_dim : t -> int

val apply : t -> float array -> float array
(** @raise Invalid_argument if the vector's length is not [in_dim]. *)

val project_into : t -> float array -> float array -> unit
(** [project_into t v out] projects [v] into the caller-provided buffer
    [out] (overwritten), avoiding the per-call allocation of {!apply} —
    the streaming collector's hot loop.
    @raise Invalid_argument if [v] is not [in_dim] long or [out] is not
    [out_dim] long. *)

val apply_into : t -> float array -> float array -> unit
(** Alias of {!project_into} (historical name). *)

val apply_all : ?jobs:int -> t -> float array array -> float array array
(** Project every row, filling a pre-allocated output matrix in place.
    [jobs] (default 1) caps the worker domains; rows are independent, so
    the result is identical for any value. *)
