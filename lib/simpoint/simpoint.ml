module Stats = Cbsp_util.Stats

type rep_policy = Centroid | Early of float

type k_search = All_k | Binary_search

type config = {
  max_k : int;
  dims : int;
  bic_fraction : float;
  restarts : int;
  max_iters : int;
  seed : int;
  rep_policy : rep_policy;
  k_search : k_search;
  jobs : int;
}

let default_config =
  { max_k = 10; dims = 15; bic_fraction = 0.9; restarts = 5; max_iters = 100;
    seed = 2007; rep_policy = Centroid; k_search = All_k; jobs = 1 }

type sim_point = { phase : int; rep : int; weight : float }

type t = {
  k : int;
  phase_of : int array;
  points : sim_point array;
  bic_scores : (int * float) list;
}

(* Per-cluster representative under the Early policy: the lowest interval
   index whose distance to the centroid is within (1+tol) of the cluster's
   best distance.  With tol = 0 this still prefers the earliest among
   exact ties, which is the PACT'03 behaviour. *)
let early_reps (result : Kmeans.result) ~points ~tolerance =
  let k = result.Kmeans.k in
  let best_d = Array.make k infinity in
  Array.iteri
    (fun i p ->
      let c = result.Kmeans.assignments.(i) in
      let d = Stats.sq_distance p result.Kmeans.centroids.(c) in
      if d < best_d.(c) then best_d.(c) <- d)
    points;
  let slack = (1.0 +. tolerance) ** 2.0 in
  let reps = Array.make k (-1) in
  Array.iteri
    (fun i p ->
      let c = result.Kmeans.assignments.(i) in
      if reps.(c) < 0 then begin
        let d = Stats.sq_distance p result.Kmeans.centroids.(c) in
        if d <= best_d.(c) *. slack +. 1e-12 then reps.(c) <- i
      end)
    points;
  reps

let pick_projected ?(config = default_config) ~weights ~points () =
  let n = Array.length points in
  if n = 0 then invalid_arg "Simpoint.pick: no intervals";
  if Array.length weights <> n then invalid_arg "Simpoint.pick: weights mismatch";
  Array.iter
    (fun w -> if w <= 0.0 then invalid_arg "Simpoint.pick: non-positive weight")
    weights;
  let max_k = min config.max_k n in
  (* Memoized clustering per k, so the two search strategies share code. *)
  let cache = Hashtbl.create 16 in
  let cluster_at k =
    match Hashtbl.find_opt cache k with
    | Some entry -> entry
    | None ->
      let result =
        Kmeans.run ~seed:(config.seed + k) ~restarts:config.restarts
          ~max_iters:config.max_iters ~jobs:config.jobs ~k ~weights ~points ()
      in
      let score = Bic.score ~weights ~points result in
      Hashtbl.add cache k (result, score);
      (result, score)
  in
  let chosen_k =
    match config.k_search with
    | All_k ->
      let scores =
        List.init max_k (fun i ->
            let k = i + 1 in
            (k, snd (cluster_at k)))
      in
      Bic.pick_k ~scores ~fraction:config.bic_fraction
    | Binary_search ->
      (* Bracket the BIC range with k=1 and k=max_k, then find the
         smallest k whose score clears the threshold. *)
      let _, s_lo = cluster_at 1 in
      let _, s_hi = cluster_at max_k in
      let lo_score = Float.min s_lo s_hi and hi_score = Float.max s_lo s_hi in
      let threshold =
        lo_score +. (config.bic_fraction *. (hi_score -. lo_score))
      in
      let rec search lo hi =
        if lo >= hi then lo
        else begin
          let mid = (lo + hi) / 2 in
          let _, s = cluster_at mid in
          if s >= threshold then search lo mid else search (mid + 1) hi
        end
      in
      search 1 max_k
  in
  let result, _ = cluster_at chosen_k in
  let reps =
    match config.rep_policy with
    | Centroid -> Kmeans.closest_to_centroid result ~points
    | Early tolerance -> early_reps result ~points ~tolerance
  in
  let mass = Kmeans.cluster_weights result ~weights in
  let total = Stats.sum weights in
  let sim_points =
    Array.init chosen_k (fun c ->
        { phase = c; rep = reps.(c); weight = mass.(c) /. total })
  in
  (* Drop phantom phases (duplicate centroids can leave a cluster with no
     members); renumber so phase ids stay dense. *)
  let live = Array.to_list sim_points |> List.filter (fun p -> p.rep >= 0) in
  let renumber = Hashtbl.create 8 in
  List.iteri (fun i p -> Hashtbl.add renumber p.phase i) live;
  let points_arr =
    Array.of_list (List.mapi (fun i p -> { p with phase = i }) live)
  in
  let phase_of =
    Array.map (fun c -> Hashtbl.find renumber c) result.Kmeans.assignments
  in
  let bic_scores =
    Hashtbl.fold (fun k (_, s) acc -> (k, s) :: acc) cache []
    |> List.sort compare
  in
  { k = Array.length points_arr; phase_of; points = points_arr; bic_scores }

(* The projection a streaming collector must reproduce to feed
   [pick_projected] points bit-identical to what [pick] would compute. *)
let projection_for ?(config = default_config) ~in_dim () =
  Projection.create ~seed:config.seed ~in_dim
    ~out_dim:(min config.dims in_dim)

let pick ?(config = default_config) ~weights ~bbvs () =
  let n = Array.length bbvs in
  if n = 0 then invalid_arg "Simpoint.pick: no intervals";
  if Array.length weights <> n then invalid_arg "Simpoint.pick: weights mismatch";
  let normalized = Array.map Stats.normalize bbvs in
  let projection = projection_for ~config ~in_dim:(Array.length bbvs.(0)) () in
  let points = Projection.apply_all ~jobs:config.jobs projection normalized in
  pick_projected ~config ~weights ~points ()

let estimate t ~metric_of_rep =
  let acc = ref 0.0 in
  Array.iter (fun p -> acc := !acc +. (p.weight *. metric_of_rep p.rep)) t.points;
  !acc
