module Rng = Cbsp_util.Rng
module Scheduler = Cbsp_engine.Scheduler

type t = { matrix : float array array; in_dim : int; out_dim : int }
(* matrix.(j) is the j-th input dimension's row of [out_dim] coefficients:
   projection is a single pass over the input's nonzero entries, which is
   fast for sparse BBVs. *)

let create ~seed ~in_dim ~out_dim =
  if in_dim <= 0 || out_dim <= 0 then
    invalid_arg "Projection.create: dimensions must be positive";
  let rng = Rng.create ~seed in
  let matrix =
    Array.init in_dim (fun _ ->
        Array.init out_dim (fun _ -> (2.0 *. Rng.float rng) -. 1.0))
  in
  { matrix; in_dim; out_dim }

let in_dim t = t.in_dim

let out_dim t = t.out_dim

(* [out] is assumed zeroed and of length [out_dim]. *)
let apply_to_zeroed t v out =
  for j = 0 to t.in_dim - 1 do
    let x = v.(j) in
    if x <> 0.0 then begin
      let row = t.matrix.(j) in
      for i = 0 to t.out_dim - 1 do
        out.(i) <- out.(i) +. (x *. row.(i))
      done
    end
  done

let apply_into t v out =
  if Array.length v <> t.in_dim then
    invalid_arg "Projection.apply: dimension mismatch";
  if Array.length out <> t.out_dim then
    invalid_arg "Projection.apply_into: output buffer length mismatch";
  Array.fill out 0 t.out_dim 0.0;
  apply_to_zeroed t v out

let apply t v =
  if Array.length v <> t.in_dim then
    invalid_arg "Projection.apply: dimension mismatch";
  let out = Array.make t.out_dim 0.0 in
  apply_to_zeroed t v out;
  out

(* Rows are independent, so worker count cannot affect the result; the
   output matrix is allocated up front and rows are filled in place, in
   fixed chunks. *)
let rows_per_chunk = 32

let apply_all ?(jobs = 1) t vs =
  let n = Array.length vs in
  Array.iter
    (fun v ->
      if Array.length v <> t.in_dim then
        invalid_arg "Projection.apply: dimension mismatch")
    vs;
  let out = Array.init n (fun _ -> Array.make t.out_dim 0.0) in
  if jobs <= 1 then
    for r = 0 to n - 1 do
      apply_to_zeroed t vs.(r) out.(r)
    done
  else begin
    let chunks =
      List.init ((n + rows_per_chunk - 1) / rows_per_chunk) (fun c ->
          (c * rows_per_chunk, min n ((c + 1) * rows_per_chunk)))
    in
    let (_ : unit list) =
      Scheduler.parallel_map ~jobs
        (fun (lo, hi) ->
          for r = lo to hi - 1 do
            apply_to_zeroed t vs.(r) out.(r)
          done)
        chunks
    in
    ()
  end;
  out
