module Rng = Cbsp_util.Rng
module Scheduler = Cbsp_engine.Scheduler

type matrix =
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { matrix : matrix; in_dim : int; out_dim : int }
(* Row-major flat float64 Bigarray: entry (j, i) — input dimension j,
   output dimension i — lives at [j * out_dim + i], so projection is a
   single pass over the input's nonzero entries with each row's
   coefficients contiguous.  Bigarray storage keeps the whole matrix in
   one unboxed block (no per-row indirection, no bounds checks in the
   hot loop via unsafe_get). *)

let create ~seed ~in_dim ~out_dim =
  if in_dim <= 0 || out_dim <= 0 then
    invalid_arg "Projection.create: dimensions must be positive";
  let rng = Rng.create ~seed in
  let matrix =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
      (in_dim * out_dim)
  in
  (* Same draw order as the historical float array array fill (row by
     row, ascending), so a given seed yields the same matrix bit for
     bit. *)
  for j = 0 to in_dim - 1 do
    for i = 0 to out_dim - 1 do
      Bigarray.Array1.unsafe_set matrix ((j * out_dim) + i)
        ((2.0 *. Rng.float rng) -. 1.0)
    done
  done;
  { matrix; in_dim; out_dim }

let in_dim t = t.in_dim

let out_dim t = t.out_dim

(* [out] is assumed zeroed and of length [out_dim].  Output dimensions
   are processed in blocks of four whose partial sums live in local refs
   (unboxed by the compiler), eliminating the per-element load/store on
   [out] that dominates the naive j-outer loop.  Each out.(i) still
   accumulates its terms in ascending-j order, so the result is
   bit-identical to the historical implementation — blocking only
   reorders work across independent output elements, never within one
   sum. *)
let apply_to_zeroed t v out =
  let m = t.matrix in
  let od = t.out_dim and id = t.in_dim in
  let i = ref 0 in
  while od - !i >= 8 do
    let i0 = !i in
    let a0 = ref (Array.unsafe_get out i0)
    and a1 = ref (Array.unsafe_get out (i0 + 1))
    and a2 = ref (Array.unsafe_get out (i0 + 2))
    and a3 = ref (Array.unsafe_get out (i0 + 3))
    and a4 = ref (Array.unsafe_get out (i0 + 4))
    and a5 = ref (Array.unsafe_get out (i0 + 5))
    and a6 = ref (Array.unsafe_get out (i0 + 6))
    and a7 = ref (Array.unsafe_get out (i0 + 7)) in
    for j = 0 to id - 1 do
      let x = Array.unsafe_get v j in
      if x <> 0.0 then begin
        let base = (j * od) + i0 in
        a0 := !a0 +. (x *. Bigarray.Array1.unsafe_get m base);
        a1 := !a1 +. (x *. Bigarray.Array1.unsafe_get m (base + 1));
        a2 := !a2 +. (x *. Bigarray.Array1.unsafe_get m (base + 2));
        a3 := !a3 +. (x *. Bigarray.Array1.unsafe_get m (base + 3));
        a4 := !a4 +. (x *. Bigarray.Array1.unsafe_get m (base + 4));
        a5 := !a5 +. (x *. Bigarray.Array1.unsafe_get m (base + 5));
        a6 := !a6 +. (x *. Bigarray.Array1.unsafe_get m (base + 6));
        a7 := !a7 +. (x *. Bigarray.Array1.unsafe_get m (base + 7))
      end
    done;
    Array.unsafe_set out i0 !a0;
    Array.unsafe_set out (i0 + 1) !a1;
    Array.unsafe_set out (i0 + 2) !a2;
    Array.unsafe_set out (i0 + 3) !a3;
    Array.unsafe_set out (i0 + 4) !a4;
    Array.unsafe_set out (i0 + 5) !a5;
    Array.unsafe_set out (i0 + 6) !a6;
    Array.unsafe_set out (i0 + 7) !a7;
    i := i0 + 8
  done;
  while od - !i >= 4 do
    let i0 = !i in
    let a0 = ref (Array.unsafe_get out i0)
    and a1 = ref (Array.unsafe_get out (i0 + 1))
    and a2 = ref (Array.unsafe_get out (i0 + 2))
    and a3 = ref (Array.unsafe_get out (i0 + 3)) in
    for j = 0 to id - 1 do
      let x = Array.unsafe_get v j in
      if x <> 0.0 then begin
        let base = (j * od) + i0 in
        a0 := !a0 +. (x *. Bigarray.Array1.unsafe_get m base);
        a1 := !a1 +. (x *. Bigarray.Array1.unsafe_get m (base + 1));
        a2 := !a2 +. (x *. Bigarray.Array1.unsafe_get m (base + 2));
        a3 := !a3 +. (x *. Bigarray.Array1.unsafe_get m (base + 3))
      end
    done;
    Array.unsafe_set out i0 !a0;
    Array.unsafe_set out (i0 + 1) !a1;
    Array.unsafe_set out (i0 + 2) !a2;
    Array.unsafe_set out (i0 + 3) !a3;
    i := i0 + 4
  done;
  while od - !i >= 2 do
    let i0 = !i in
    let a0 = ref (Array.unsafe_get out i0)
    and a1 = ref (Array.unsafe_get out (i0 + 1)) in
    for j = 0 to id - 1 do
      let x = Array.unsafe_get v j in
      if x <> 0.0 then begin
        let base = (j * od) + i0 in
        a0 := !a0 +. (x *. Bigarray.Array1.unsafe_get m base);
        a1 := !a1 +. (x *. Bigarray.Array1.unsafe_get m (base + 1))
      end
    done;
    Array.unsafe_set out i0 !a0;
    Array.unsafe_set out (i0 + 1) !a1;
    i := i0 + 2
  done;
  while !i < od do
    let i0 = !i in
    let acc = ref (Array.unsafe_get out i0) in
    for j = 0 to id - 1 do
      let x = Array.unsafe_get v j in
      if x <> 0.0 then
        acc := !acc +. (x *. Bigarray.Array1.unsafe_get m ((j * od) + i0))
    done;
    Array.unsafe_set out i0 !acc;
    incr i
  done

let project_into t v out =
  if Array.length v <> t.in_dim then
    invalid_arg "Projection.apply: dimension mismatch";
  if Array.length out <> t.out_dim then
    invalid_arg "Projection.apply_into: output buffer length mismatch";
  Array.fill out 0 t.out_dim 0.0;
  apply_to_zeroed t v out

let apply_into = project_into

let apply t v =
  if Array.length v <> t.in_dim then
    invalid_arg "Projection.apply: dimension mismatch";
  let out = Array.make t.out_dim 0.0 in
  apply_to_zeroed t v out;
  out

(* Rows are independent, so worker count cannot affect the result; the
   output matrix is allocated up front and rows are filled in place, in
   fixed chunks. *)
let rows_per_chunk = 32

let apply_all ?(jobs = 1) t vs =
  let n = Array.length vs in
  Array.iter
    (fun v ->
      if Array.length v <> t.in_dim then
        invalid_arg "Projection.apply: dimension mismatch")
    vs;
  let out = Array.init n (fun _ -> Array.make t.out_dim 0.0) in
  if jobs <= 1 then
    for r = 0 to n - 1 do
      apply_to_zeroed t vs.(r) out.(r)
    done
  else begin
    let chunks =
      List.init ((n + rows_per_chunk - 1) / rows_per_chunk) (fun c ->
          (c * rows_per_chunk, min n ((c + 1) * rows_per_chunk)))
    in
    let (_ : unit list) =
      Scheduler.parallel_map ~jobs
        (fun (lo, hi) ->
          for r = lo to hi - 1 do
            apply_to_zeroed t vs.(r) out.(r)
          done)
        chunks
    in
    ()
  end;
  out
