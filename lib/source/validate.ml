exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let proc_names program =
  List.map (fun p -> p.Ast.proc_name) program.Ast.procs

let rec stmt_calls stmt =
  match (stmt : Ast.stmt) with
  | Work _ -> []
  | Call { callee; _ } -> [ callee ]
  | Loop l -> List.concat_map stmt_calls l.body
  | Select s ->
    Array.to_list s.arms |> List.concat_map (List.concat_map stmt_calls)

let callees_of program name =
  let p = Ast.find_proc program name in
  List.concat_map stmt_calls p.proc_body

let check_call_graph program =
  (* DFS with colouring; also reject unknown callees. *)
  let names = proc_names program in
  let state = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Done -> ()
    | Some `Active -> fail "recursive call cycle through procedure %S" name
    | None ->
      if not (List.mem name names) then fail "call to undeclared procedure %S" name;
      Hashtbl.replace state name `Active;
      List.iter visit (callees_of program name);
      Hashtbl.replace state name `Done
  in
  List.iter visit names

let check_lines program =
  let seen = Hashtbl.create 64 in
  let add line what =
    match Hashtbl.find_opt seen line with
    | Some prev -> fail "duplicate source line %d (%s and %s)" line prev what
    | None -> Hashtbl.add seen line what
  in
  Ast.iter_stmts
    (function
      | Ast.Work w -> add w.work_line "work"
      | Ast.Call { call_line; _ } -> add call_line "call"
      | Ast.Loop l -> add l.loop_line "loop"
      | Ast.Select s -> add s.sel_line "select")
    program;
  List.iter (fun p -> add p.Ast.proc_line "proc") program.Ast.procs

let check_accesses program =
  let n = Array.length program.Ast.arrays in
  Ast.iter_stmts
    (function
      | Ast.Work w ->
        if w.insts <= 0 then fail "work at line %d has non-positive insts" w.work_line;
        List.iter
          (fun a ->
            if a.Ast.acc_array < 0 || a.Ast.acc_array >= n then
              fail "work at line %d references undeclared array %d" w.work_line
                a.Ast.acc_array;
            if a.Ast.acc_count <= 0 then
              fail "work at line %d has non-positive access count" w.work_line;
            if not (a.Ast.acc_write_ratio >= 0.0 && a.Ast.acc_write_ratio <= 1.0)
            then
              fail "work at line %d has write ratio %g outside [0, 1]" w.work_line
                a.Ast.acc_write_ratio;
            match a.Ast.acc_pattern with
            | Ast.Seq { stride } ->
              if stride <= 0 then
                fail "work at line %d has non-positive stride" w.work_line
            | Ast.Hot { window } ->
              if window <= 0 then
                fail "work at line %d has non-positive hot window" w.work_line
            | Ast.Rand | Ast.Chase -> ())
          w.accesses
      | Ast.Call _ | Ast.Loop _ | Ast.Select _ -> ())
    program

let check_trips program =
  Ast.iter_stmts
    (function
      | Ast.Loop l -> begin
        match l.trips with
        | Ast.Fixed n ->
          if n < 0 then fail "loop at line %d has negative trips" l.loop_line
        | Ast.Scaled { base; per_scale } ->
          if base < 0 || per_scale < 0 then
            fail "loop at line %d has negative scaled trips" l.loop_line
        | Ast.Jitter { mean; spread } ->
          if mean < 0 || spread < 0 then
            fail "loop at line %d has negative jitter trips" l.loop_line
      end
      | Ast.Work _ | Ast.Call _ | Ast.Select _ -> ())
    program

let check_empty_bodies program =
  List.iter
    (fun p ->
      if p.Ast.proc_body = [] then fail "procedure %S has an empty body" p.Ast.proc_name)
    program.Ast.procs

let check program =
  let names = proc_names program in
  if names = [] then fail "program %S has no procedures" program.Ast.prog_name;
  let rec dup = function
    | [] -> ()
    | n :: rest -> if List.mem n rest then fail "duplicate procedure %S" n else dup rest
  in
  dup names;
  if not (List.mem program.Ast.main names) then
    fail "entry procedure %S is not declared" program.Ast.main;
  check_call_graph program;
  check_lines program;
  check_accesses program;
  check_trips program;
  check_empty_bodies program

let call_depth program =
  let memo = Hashtbl.create 16 in
  let rec depth name =
    match Hashtbl.find_opt memo name with
    | Some d -> d
    | None ->
      let d =
        match callees_of program name with
        | [] -> 0
        | cs -> 1 + List.fold_left (fun acc c -> max acc (depth c)) 0 cs
      in
      Hashtbl.replace memo name d;
      d
  in
  depth program.Ast.main
