(* Minimal JSON shared by the cbsp-serve/1 line protocol and the
   validate harness (budget files in, cbsp-validate/1 leaderboards out).
   The repo's other JSON is write-only (hand-printed manifests and
   reports); these consumers must also PARSE, and the container has no
   JSON library — so this is the smallest complete reader/writer: full
   escape handling, numbers via [float_of_string]/[%.17g] (round-trips
   every double), no streaming.  Protocol messages are one line, so
   [to_string] never emits newlines. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let parse_fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

(* --- printing ---------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else if Float.is_nan f then Buffer.add_string buf "null"
  else if f = Float.infinity then Buffer.add_string buf "1e999"
  else if f = Float.neg_infinity then Buffer.add_string buf "-1e999"
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* --- parsing ----------------------------------------------------------- *)

type cursor = { data : string; mutable pos : int }

let peek cur =
  if cur.pos < String.length cur.data then Some cur.data.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  let continue = ref true in
  while !continue do
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cur
    | _ -> continue := false
  done

let expect cur c =
  match peek cur with
  | Some got when got = c -> advance cur
  | Some got -> parse_fail "expected %c at offset %d, got %c" c cur.pos got
  | None -> parse_fail "expected %c at offset %d, got end of input" c cur.pos

let parse_hex4 cur =
  let v = ref 0 in
  for _ = 1 to 4 do
    let d =
      match peek cur with
      | Some c when c >= '0' && c <= '9' -> Char.code c - Char.code '0'
      | Some c when c >= 'a' && c <= 'f' -> Char.code c - Char.code 'a' + 10
      | Some c when c >= 'A' && c <= 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> parse_fail "bad \\u escape at offset %d" cur.pos
    in
    advance cur;
    v := (!v * 16) + d
  done;
  !v

(* Encode a code point as UTF-8 (surrogate pairs are not recombined —
   the protocol only round-trips what this library itself printed, which
   never emits them). *)
let add_utf8 buf cp =
  if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
  else if cp < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (cp lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (cp lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3f)))
  end

let parse_string cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek cur with
    | None -> parse_fail "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' ->
      advance cur;
      (match peek cur with
      | Some '"' -> advance cur; Buffer.add_char buf '"'; loop ()
      | Some '\\' -> advance cur; Buffer.add_char buf '\\'; loop ()
      | Some '/' -> advance cur; Buffer.add_char buf '/'; loop ()
      | Some 'n' -> advance cur; Buffer.add_char buf '\n'; loop ()
      | Some 't' -> advance cur; Buffer.add_char buf '\t'; loop ()
      | Some 'r' -> advance cur; Buffer.add_char buf '\r'; loop ()
      | Some 'b' -> advance cur; Buffer.add_char buf '\b'; loop ()
      | Some 'f' -> advance cur; Buffer.add_char buf '\012'; loop ()
      | Some 'u' ->
        advance cur;
        add_utf8 buf (parse_hex4 cur);
        loop ()
      | _ -> parse_fail "bad escape at offset %d" cur.pos)
    | Some c -> advance cur; Buffer.add_char buf c; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.data
    && String.sub cur.data cur.pos n = word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else parse_fail "bad literal at offset %d" cur.pos

let is_num_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number cur =
  let start = cur.pos in
  while (match peek cur with Some c -> is_num_char c | None -> false) do
    advance cur
  done;
  let s = String.sub cur.data start (cur.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> parse_fail "bad number %S at offset %d" s start

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> parse_fail "unexpected end of input"
  | Some '"' -> Str (parse_string cur)
  | Some '{' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some '}' then begin advance cur; Obj [] end
    else begin
      let fields = ref [] in
      let rec fields_loop () =
        skip_ws cur;
        let k = parse_string cur in
        skip_ws cur;
        expect cur ':';
        let v = parse_value cur in
        fields := (k, v) :: !fields;
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; fields_loop ()
        | Some '}' -> advance cur
        | _ -> parse_fail "expected , or } at offset %d" cur.pos
      in
      fields_loop ();
      Obj (List.rev !fields)
    end
  | Some '[' ->
    advance cur;
    skip_ws cur;
    if peek cur = Some ']' then begin advance cur; List [] end
    else begin
      let items = ref [] in
      let rec items_loop () =
        let v = parse_value cur in
        items := v :: !items;
        skip_ws cur;
        match peek cur with
        | Some ',' -> advance cur; items_loop ()
        | Some ']' -> advance cur
        | _ -> parse_fail "expected , or ] at offset %d" cur.pos
      in
      items_loop ();
      List (List.rev !items)
    end
  | Some 't' -> parse_literal cur "true" (Bool true)
  | Some 'f' -> parse_literal cur "false" (Bool false)
  | Some 'n' -> parse_literal cur "null" Null
  | Some _ -> parse_number cur

let of_string s =
  let cur = { data = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then
    parse_fail "trailing garbage at offset %d" cur.pos;
  v

(* --- accessors --------------------------------------------------------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_str = function Str s -> Some s | _ -> None

let to_num = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let str_member key v ~default =
  match member key v with Some (Str s) -> s | _ -> default

let int_member key v ~default =
  match member key v with
  | Some (Num f) when Float.is_integer f -> int_of_float f
  | _ -> default
