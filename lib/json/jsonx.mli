(** Minimal JSON reader/writer shared by the [cbsp-serve/1] line
    protocol and the validation harness (error-budget files and
    [cbsp-validate/1] leaderboards).

    The rest of the repo only prints JSON by hand; these consumers must
    also parse it, and the toolchain ships no JSON library.  This covers
    the full value grammar with escape handling; numbers are doubles
    (printed with enough digits to round-trip).  {!to_string} emits no
    newlines, so a message is always one protocol line. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string

val of_string : string -> t
(** @raise Parse_error on malformed input (including trailing bytes). *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] on absent field or non-object. *)

val to_str : t -> string option

val to_num : t -> float option

val to_int : t -> int option
(** Integral numbers only. *)

val str_member : string -> t -> default:string -> string

val int_member : string -> t -> default:int -> int
